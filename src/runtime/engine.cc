#include "runtime/engine.h"

#include <algorithm>
#include <sstream>

#include "algebra/context_ops.h"
#include "algebra/pattern_op.h"
#include "analysis/analyzer.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "compile/compiled_pattern_op.h"
#include "compile/compiler.h"
#include "durability/manager.h"
#include "durability/serde.h"
#include "plan/translator.h"

namespace caesar {

namespace {

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// Swaps interpreted pattern operators for compiled ones in place (1:1, so
// every (query, op) row index — statistics, histograms, lint — is
// unchanged). Runs on the template plan before any partition clones it,
// so clones inherit the selected operator.
void RewritePatternOps(OpChain* chain, PatternEngine mode,
                       const PatternCompileOptions& compile_options) {
  for (auto& op : chain->ops) {
    if (op->kind() != Operator::Kind::kPattern) continue;
    const auto* pattern = static_cast<const PatternOp*>(op.get());
    if (!CompileSupported(pattern->config())) continue;  // P305 fallback
    if (mode == PatternEngine::kAuto && pattern->config().pass_through) {
      continue;  // stateless event match: nothing for the automaton to win
    }
    op = std::make_unique<CompiledPatternOp>(
        CompilePattern(pattern->shared_config(), compile_options));
  }
}

void RewritePatternEngine(ExecutablePlan* plan, PatternEngine mode,
                          const PatternCompileOptions& compile_options) {
  if (mode == PatternEngine::kInterpreted) return;
  for (auto* queries : {&plan->deriving, &plan->processing}) {
    for (CompiledQuery& query : *queries) {
      RewritePatternOps(&query.chain, mode, compile_options);
      for (OpChain& guard : query.guards) {
        RewritePatternOps(&guard, mode, compile_options);
      }
    }
  }
}

}  // namespace

const char* PatternEngineName(PatternEngine engine) {
  switch (engine) {
    case PatternEngine::kInterpreted:
      return "interpreted";
    case PatternEngine::kCompiled:
      return "compiled";
    case PatternEngine::kAuto:
      return "auto";
  }
  return "?";
}

bool ParsePatternEngine(const std::string& name, PatternEngine* out) {
  if (name == "interpreted") {
    *out = PatternEngine::kInterpreted;
  } else if (name == "compiled") {
    *out = PatternEngine::kCompiled;
  } else if (name == "auto") {
    *out = PatternEngine::kAuto;
  } else {
    return false;
  }
  return true;
}

std::string RunStats::ToString() const {
  std::ostringstream os;
  if (!tenant.empty()) os << "tenant=" << tenant << " ";
  os << "input=" << input_events << " derived=" << derived_events
     << " max_latency=" << max_latency << "s mean_latency=" << mean_latency
     << "s cpu=" << cpu_seconds << "s ops=" << ops_executed
     << " suspended=" << suspended_chains << "/"
     << suspended_chains + executed_chains << " txns=" << transactions;
  if (parallel_ticks > 0) {
    os << " pool_ticks=" << parallel_ticks << " pool_tasks=" << parallel_tasks
       << " imbalance=" << shard_imbalance << " stolen=" << tasks_stolen
       << " barrier_wait=" << barrier_wait_seconds << "s";
  }
  if (events_reordered > 0 || events_quarantined > 0 ||
      max_observed_lateness > 0) {
    os << " reordered=" << events_reordered
       << " dropped_late=" << events_dropped_late
       << " quarantined=" << events_quarantined
       << " max_lateness=" << max_observed_lateness;
  }
  if (wal_records > 0 || checkpoints_written > 0) {
    os << " wal_records=" << wal_records << " wal_bytes=" << wal_bytes
       << " fsyncs=" << fsyncs << " checkpoints=" << checkpoints_written;
  }
  for (const auto& [type, count] : derived_by_type) {
    os << "\n  " << type << ": " << count;
  }
  return os.str();
}

// Window-transition bookkeeping of one operator chain.
struct TransitionState {
  bool was_active = false;
  uint64_t last_active_bits = 0;  // gate bits active at last execution
};

namespace {

// The gate of a chain: its context ids with their history anchors (see
// plan/plan.h). Empty = always active.
struct Gate {
  std::vector<int> contexts;
  std::vector<int> anchors;
  uint64_t mask = 0;
};

Gate GateOf(const std::vector<int>& contexts, const std::vector<int>& anchors) {
  Gate gate;
  gate.contexts = contexts;
  gate.anchors = anchors.empty() ? contexts : anchors;
  for (int c : contexts) gate.mask |= uint64_t{1} << c;
  return gate;
}

// Gate of a chain, extracted from its context-window operator (used for the
// private guards of the context-independent baseline).
Gate GateOfChain(const OpChain& chain) {
  for (const auto& op : chain.ops) {
    if (op->kind() == Operator::Kind::kContextWindow) {
      const auto* window = static_cast<const ContextWindowOp*>(op.get());
      return GateOf(window->context_ids(), window->anchors());
    }
  }
  return Gate{};
}

// Applies window-transition side effects to `ops` before an execution at
// the current `contexts` state:
//  - window ended: context history discarded (Reset; Section 6.2);
//  - window (re)started: state accumulated while inactive discarded
//    (Reset), so all plan shapes stay semantically identical;
//  - gate composition changed while staying active (e.g. a grouped-window
//    boundary): partial matches survive exactly as far back as some
//    currently-active window's *anchor* — the start of the oldest original
//    window covering the current grouped window ("when the third window
//    begins, the partial results within the first window expire").
void ApplyWindowTransitions(const std::vector<std::unique_ptr<Operator>>& ops,
                            const Gate& gate,
                            const ContextBitVector& contexts,
                            TransitionState* state) {
  uint64_t active_bits = contexts.bits() & gate.mask;
  bool active_now = active_bits != 0;

  if (state->was_active && !active_now) {
    for (const auto& op : ops) op->Reset();
  } else if (state->was_active && active_now &&
             active_bits != state->last_active_bits) {
    Timestamp horizon = contexts.time();
    for (size_t i = 0; i < gate.contexts.size(); ++i) {
      if (contexts.IsActive(gate.contexts[i])) {
        horizon = std::min(horizon, contexts.ActiveSince(gate.anchors[i]));
      }
    }
    for (const auto& op : ops) op->ExpireBefore(horizon);
  } else if (!state->was_active && active_now) {
    for (const auto& op : ops) op->Reset();
  }
  state->was_active = active_now;
  state->last_active_bits = active_bits;
}

}  // namespace

// Per-partition instance of one compiled query.
struct Engine::QueryState {
  // A private guard chain of the context-independent baseline, with its own
  // transition bookkeeping against the query-private context vector.
  struct GuardInstance {
    OpChain chain;
    Gate gate;
    TransitionState transition;
  };

  // Slim per-partition operator counters (one cache line for a whole
  // chain). The per-invocation histograms live in the engine's per-worker
  // shards (op_histograms_), not here: with hundreds of partitions the
  // 1.6 KiB of buckets per operator would blow the cache on every
  // transaction.
  struct OpCounters {
    uint64_t invocations = 0;
    uint64_t input_events = 0;
    uint64_t output_events = 0;
    uint64_t work_units = 0;
  };

  const CompiledQuery* spec = nullptr;  // shape reference (not executed)
  Gate gate;                            // precomputed from the spec
  OpChain chain;                        // private operator instances
  std::vector<OpCounters> op_stats;     // per chain op (when gathering)
  // First row of this query's ops in the plan-order (query, op) row space
  // shared by op_histograms_ and CollectStatistics.
  size_t stats_row_base = 0;
  std::vector<GuardInstance> guards;
  // Query-private context vector (context-independent baseline only).
  std::unique_ptr<ContextBitVector> private_contexts;

  TransitionState transition;
};

struct Engine::PartitionState {
  uint64_t key = 0;
  std::unique_ptr<ContextBitVector> contexts;
  std::vector<QueryState> deriving;
  std::vector<QueryState> processing;
  uint64_t ops_counter = 0;
  int64_t suspended_chains = 0;
  int64_t executed_chains = 0;
  // Cumulative counterparts, never reset (for CollectStatistics).
  int64_t total_suspended = 0;
  int64_t total_executed = 0;
  int64_t transactions = 0;
  EventBatch pool;  // scratch, reused across transactions
};

Status EngineOptions::Validate() const {
  if (num_threads < 1) {
    return Status::InvalidArgument(
        "EngineOptions::num_threads must be >= 1, got " +
        std::to_string(num_threads));
  }
  if (reorder_slack < 0) {
    return Status::InvalidArgument(
        "EngineOptions::reorder_slack must be >= 0, got " +
        std::to_string(reorder_slack));
  }
  if (!(accel > 0.0)) {
    return Status::InvalidArgument(
        "EngineOptions::accel must be positive, got " +
        std::to_string(accel));
  }
  if (!(seconds_per_tick > 0.0)) {
    return Status::InvalidArgument(
        "EngineOptions::seconds_per_tick must be positive, got " +
        std::to_string(seconds_per_tick));
  }
  if (gc_interval < 1) {
    return Status::InvalidArgument(
        "EngineOptions::gc_interval must be >= 1, got " +
        std::to_string(gc_interval));
  }
  if (gc_horizon < 0) {
    return Status::InvalidArgument(
        "EngineOptions::gc_horizon must be >= 0, got " +
        std::to_string(gc_horizon));
  }
  if (timeline_capacity < 1) {
    return Status::InvalidArgument(
        "EngineOptions::timeline_capacity must be >= 1, got " +
        std::to_string(timeline_capacity));
  }
  CAESAR_RETURN_IF_ERROR(durability.Validate());
  return Status::Ok();
}

Result<std::unique_ptr<Engine>> Engine::Create(ExecutablePlan plan,
                                               EngineOptions options) {
  CAESAR_RETURN_IF_ERROR(options.Validate());
  return std::make_unique<Engine>(std::move(plan), std::move(options));
}

Result<std::unique_ptr<Engine>> Engine::Create(const CaesarModel& model,
                                               const PlanOptions& plan_options,
                                               EngineOptions options) {
  CAESAR_RETURN_IF_ERROR(options.Validate());
  std::vector<std::string> retained;
  if (options.analysis != AnalysisMode::kOff) {
    AnalyzerOptions analyzer_options;
    analyzer_options.source_name = "<model>";
    analyzer_options.include_notes = false;
    for (const Diagnostic& diag : AnalyzeModel(model, analyzer_options)) {
      if (diag.severity == DiagSeverity::kError &&
          options.analysis == AnalysisMode::kStrict) {
        return Status::InvalidArgument(FormatDiagnostic(diag));
      }
      retained.push_back(FormatDiagnostic(diag));
    }
  }
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan plan,
                          TranslateModel(model, plan_options));
  auto engine = std::make_unique<Engine>(std::move(plan), std::move(options));
  engine->analysis_diagnostics_ = std::move(retained);
  return engine;
}

Engine::Engine(ExecutablePlan plan, EngineOptions options)
    : plan_(std::move(plan)),
      options_(std::move(options)),
      quarantine_(options_.quarantine_capacity) {
  CAESAR_CHECK_OK(options_.Validate());
  RewritePatternEngine(&plan_, options_.pattern_engine,
                       PatternCompileOptions{options_.absint});
  if (options_.ingest_policy == IngestPolicy::kReorder) {
    reorder_ = std::make_unique<ReorderBuffer>(options_.reorder_slack);
  }
  // Resolve partition attribute indices for every type known now, so the
  // cache is read-only on the hot path (see header comment).
  if (!plan_.partition_by.empty()) {
    partition_attr_cache_.resize(plan_.registry->num_types());
    for (TypeId id = 0; id < plan_.registry->num_types(); ++id) {
      ResolvePartitionAttrs(id);
    }
  }
  if (options_.shared_executor != nullptr) {
    executor_ = options_.shared_executor;
  } else if (options_.num_threads > 1) {
    executor_ = std::make_shared<ShardedExecutor>(options_.num_threads,
                                                  options_.scheduler);
  }
  // Metric shards are keyed by executing worker id, so the shard count
  // follows the pool actually in use (a shared pool may be wider than
  // num_threads); serial mode records into shard 0.
  const int metric_shards =
      executor_ != nullptr ? executor_->num_workers() : 1;
  if (options_.metrics >= MetricsGranularity::kEngine) {
    // One shard per worker; serial mode records into shard 0.
    registry_ = std::make_unique<MetricsRegistry>(metric_shards);
    ctr_transactions_ = registry_->AddCounter(
        "transactions", "Stream transactions (partition x time stamp)");
    ctr_input_events_ = registry_->AddCounter(
        "transaction_input_events", "Events entering stream transactions");
    ctr_derived_events_ = registry_->AddCounter(
        "transaction_derived_events", "Events derived by stream transactions");
    hist_transaction_events_ = registry_->AddHistogram(
        "transaction_events", "Input events per stream transaction");
    hist_transaction_derived_ = registry_->AddHistogram(
        "transaction_derived", "Derived events per stream transaction");
    timeline_ = std::make_unique<Timeline>(options_.timeline_capacity);
  }
  if (options_.metrics >= MetricsGranularity::kOperator) {
    size_t rows = 0;
    for (const auto* queries : {&plan_.deriving, &plan_.processing}) {
      for (const CompiledQuery& query : *queries) rows += query.chain.ops.size();
    }
    op_histograms_.assign(static_cast<size_t>(metric_shards),
                          std::vector<OperatorHistograms>(rows));
  }
  if (options_.tracing) {
    trace_ = std::make_unique<TraceRecorder>();
  }
}

Engine::~Engine() {
  if (trace_ != nullptr && !options_.trace_path.empty()) {
    Status status = trace_->WriteJson(options_.trace_path);
    if (!status.ok()) {
      CAESAR_LOG_WARNING << "failed to write trace: " << status.ToString();
    }
  }
}

int Engine::num_partitions() const {
  return static_cast<int>(partitions_.size());
}

const ContextBitVector* Engine::partition_contexts(uint64_t key) const {
  auto it = partitions_.find(key);
  return it == partitions_.end() ? nullptr : it->second->contexts.get();
}

Engine::PartitionState* Engine::GetOrCreatePartition(uint64_t key) {
  auto it = partitions_.find(key);
  if (it != partitions_.end()) return it->second.get();

  auto partition = std::make_unique<PartitionState>();
  partition->key = key;
  partition->contexts = std::make_unique<ContextBitVector>(
      std::max(plan_.num_contexts, 1), std::max(plan_.default_context, 0));
  size_t stats_row = 0;
  auto instantiate = [&](const std::vector<CompiledQuery>& specs,
                         std::vector<QueryState>* states) {
    states->reserve(specs.size());
    for (const CompiledQuery& spec : specs) {
      QueryState state;
      state.spec = &spec;
      state.gate = GateOf(spec.contexts, spec.anchors);
      state.chain = spec.chain.Clone();
      state.stats_row_base = stats_row;
      stats_row += state.chain.ops.size();
      // At kOperator granularity the per-worker histogram shards subsume
      // the counters (invocations = count, events/work = sums), so the
      // per-partition counter rows exist only on the counters-only path.
      if (options_.gather_statistics &&
          options_.metrics < MetricsGranularity::kOperator) {
        state.op_stats.resize(state.chain.ops.size());
      }
      for (const OpChain& guard : spec.guards) {
        QueryState::GuardInstance instance;
        instance.chain = guard.Clone();
        instance.gate = GateOfChain(instance.chain);
        state.guards.push_back(std::move(instance));
      }
      if (!state.guards.empty()) {
        state.private_contexts = std::make_unique<ContextBitVector>(
            std::max(plan_.num_contexts, 1),
            std::max(plan_.default_context, 0));
      }
      states->push_back(std::move(state));
    }
  };
  instantiate(plan_.deriving, &partition->deriving);
  instantiate(plan_.processing, &partition->processing);
  PartitionState* result = partition.get();
  partitions_.emplace(key, std::move(partition));
  return result;
}

void Engine::ResolvePartitionAttrs(TypeId type_id) {
  const Schema& schema = plan_.registry->type(type_id).schema;
  std::vector<int>& indices = partition_attr_cache_[type_id];
  indices.clear();
  indices.reserve(plan_.partition_by.size());
  for (const std::string& attr : plan_.partition_by) {
    indices.push_back(schema.IndexOf(attr));
  }
}

uint64_t Engine::PartitionKeyOf(const Event& event) {
  if (plan_.partition_by.empty()) return 0;
  TypeId type_id = event.type_id();
  if (type_id >= static_cast<TypeId>(partition_attr_cache_.size()) ||
      partition_attr_cache_[type_id].empty()) {
    // Type registered after construction: lazy fallback, scheduler thread
    // only (distribution precedes worker dispatch within a tick).
    if (type_id >= static_cast<TypeId>(partition_attr_cache_.size())) {
      partition_attr_cache_.resize(type_id + 1);
    }
    ResolvePartitionAttrs(type_id);
  }
  const std::vector<int>& indices = partition_attr_cache_[type_id];
  uint64_t key = 0x12345678;
  for (int index : indices) {
    if (index < 0) continue;
    key = HashCombine(key, event.value(index).Hash());
  }
  return key;
}

bool Engine::ClassifyMalformed(const Event& event,
                               QuarantineReason* reason) const {
  if (event.type_id() < 0 ||
      event.type_id() >= static_cast<TypeId>(plan_.registry->num_types())) {
    *reason = QuarantineReason::kUnknownType;
    return true;
  }
  if (event.time() < 0) {
    *reason = QuarantineReason::kNegativeTime;
    return true;
  }
  if (event.end_time() < event.start_time()) {
    *reason = QuarantineReason::kInvertedInterval;
    return true;
  }
  return false;
}

void Engine::QuarantineEvent(EventPtr event, QuarantineReason reason) {
  // Partition attribution needs a registered type; unknown types land in
  // partition 0 (unpartitionable).
  uint64_t key = reason == QuarantineReason::kUnknownType
                     ? 0
                     : PartitionKeyOf(*event);
  if (reason == QuarantineReason::kOutOfOrder ||
      reason == QuarantineReason::kLateBeyondSlack) {
    ++ingest_metrics_.dropped_late;
  }
  ++ingest_metrics_.quarantined;
  quarantine_.Add(std::move(event), reason, key);
}

Status Engine::IngestBatch(const EventBatch& input, EventBatch* admitted,
                           const EventBatch** effective, RunStats* stats) {
  *effective = &input;
  if (options_.ingest_policy == IngestPolicy::kStrict) {
    // Validate without mutating anything; the batch is either processed in
    // full or rejected in full.
    for (size_t i = 0; i < input.size(); ++i) {
      QuarantineReason reason;
      if (ClassifyMalformed(*input[i], &reason)) {
        return Status::InvalidArgument(
            "strict ingest: malformed event at index " + std::to_string(i) +
            " (" + QuarantineReasonName(reason) + ", " +
            DiagCodeName(QuarantineDiagCode(reason)) +
            "); use IngestPolicy::kDrop or kReorder to quarantine instead");
      }
    }
    ptrdiff_t unordered = FirstOutOfOrderIndex(input);
    if (unordered >= 0) {
      return Status::FailedPrecondition(
          "strict ingest: input not time-ordered at index " +
          std::to_string(unordered) + ": time " +
          std::to_string(input[unordered]->time()) + " after " +
          std::to_string(input[unordered - 1]->time()) +
          "; use IngestPolicy::kReorder with a lateness slack to "
          "re-sequence bounded disorder");
    }
    ingest_metrics_.admitted += static_cast<int64_t>(input.size());
    return Status::Ok();
  }

  admitted->reserve(input.size());
  Timestamp run_max_lateness = 0;
  auto note_lateness = [&](Timestamp high_water, Timestamp t) {
    Timestamp lateness = high_water - t;
    run_max_lateness = std::max(run_max_lateness, lateness);
    ingest_metrics_.max_observed_lateness =
        std::max(ingest_metrics_.max_observed_lateness, lateness);
  };
  for (const EventPtr& event : input) {
    QuarantineReason reason;
    if (ClassifyMalformed(*event, &reason)) {
      QuarantineEvent(event, reason);
      continue;
    }
    Timestamp t = event->time();
    if (options_.ingest_policy == IngestPolicy::kDrop) {
      if (drop_any_admitted_ && t < drop_max_admitted_) {
        note_lateness(drop_max_admitted_, t);
        QuarantineEvent(event, QuarantineReason::kOutOfOrder);
        continue;
      }
      drop_any_admitted_ = true;
      drop_max_admitted_ = t;
      admitted->push_back(event);
    } else {  // kReorder
      bool late = reorder_->any_seen() && t < reorder_->max_seen();
      if (late) note_lateness(reorder_->max_seen(), t);
      if (!reorder_->Push(event, admitted)) {
        QuarantineEvent(event, QuarantineReason::kLateBeyondSlack);
        continue;
      }
      if (late) ++ingest_metrics_.reordered;
    }
  }
  if (reorder_ != nullptr) {
    // Run processes its batch to completion: end of batch is end of stream
    // for everything still buffered. The high-water mark persists, so a
    // later Run cannot sneak events underneath what was already emitted.
    reorder_->Flush(admitted);
  }
  ingest_metrics_.admitted += static_cast<int64_t>(admitted->size());
  stats->max_observed_lateness = run_max_lateness;
  *effective = admitted;
  return Status::Ok();
}

Result<RunStats> Engine::Run(const EventBatch& raw_input,
                             EventBatch* outputs) {
  RunStats stats;
  stats.tenant = options_.tenant;
  stats.input_events = static_cast<int64_t>(raw_input.size());
  const IngestMetrics ingest_before = ingest_metrics_;
  // Lazy durability open: I/O failures surface here as a Status instead of
  // aborting construction. Recover installs the manager itself, and replay
  // must not re-log what it reads.
  if (options_.durability.mode != DurabilityMode::kOff &&
      durability_ == nullptr && !replaying_) {
    CAESAR_ASSIGN_OR_RETURN(durability_,
                            DurabilityManager::Open(options_.durability));
  }
  const DurabilityCounters durability_before =
      durability_ != nullptr ? durability_->counters() : DurabilityCounters{};
  // Install the trace sink for the scheduler thread (no-op when null).
  TraceScope trace_scope(trace_.get());
  CAESAR_TRACE_SPAN("run");
  const bool tick_telemetry = options_.metrics >= MetricsGranularity::kEngine;
  EventBatch admitted;
  const EventBatch* effective = nullptr;
  {
    CAESAR_TRACE_SPAN("ingest");
    Stopwatch ingest_watch;
    CAESAR_RETURN_IF_ERROR(
        IngestBatch(raw_input, &admitted, &effective, &stats));
    if (tick_telemetry) {
      tick_metrics_.ingest_seconds.Add(ingest_watch.ElapsedSeconds());
    }
  }
  const EventBatch& input = *effective;

  RunningStats latency;
  uint64_t ops_before = 0;
  for (const auto& [key, partition] : partitions_) {
    ops_before += partition->ops_counter;
  }
  const ExecutorMetrics exec_before =
      executor_ != nullptr ? executor_->metrics() : ExecutorMetrics{};

  size_t i = 0;
  const double tick_wall = options_.seconds_per_tick / options_.accel;
  while (i < input.size()) {
    Timestamp t = input[i]->time();
    size_t j = i;
    while (j < input.size() && input[j]->time() == t) ++j;

    // Write-ahead: the tick's admitted events hit the log before any state
    // mutates. A failed append (disk error, injected crash) aborts the Run
    // with this batch uncommitted — recovery discards its unsealed records.
    if (durability_ != nullptr && !replaying_) {
      CAESAR_RETURN_IF_ERROR(
          durability_->AppendTick(t, input.data() + i, j - i));
    }

    // Distribute this time stamp's events to partitions (the event
    // distributor + event queues of Fig. 8). std::map gives deterministic
    // partition order.
    std::map<uint64_t, EventBatch> by_partition;
    for (size_t k = i; k < j; ++k) {
      by_partition[PartitionKeyOf(*input[k])].push_back(input[k]);
    }

    // Execute one transaction per partition; measure processing cost.
    // Partitions are created here, on the scheduler thread, so workers only
    // ever touch existing partition state.
    Stopwatch watch;
    std::vector<std::pair<PartitionState*, const EventBatch*>> work;
    work.reserve(by_partition.size());
    shard_scratch_.clear();
    weight_scratch_.clear();
    for (auto& [key, events] : by_partition) {
      work.emplace_back(GetOrCreatePartition(key), &events);
      shard_scratch_.push_back(key);
      // Task weight = the transaction's event count, so the pool's
      // imbalance metrics see work skew, not just task-count skew (one
      // partition is one task — a hot partition would be invisible
      // otherwise).
      weight_scratch_.push_back(static_cast<uint64_t>(events.size()));
    }
    // Pre-dispatch telemetry baselines: context-vector versions (their
    // per-tick delta = context switches) and cumulative chain counts.
    int64_t executed_before = 0;
    int64_t suspended_before = 0;
    if (tick_telemetry) {
      context_version_scratch_.clear();
      for (auto& [partition, events] : work) {
        context_version_scratch_.push_back(partition->contexts->version());
        executed_before += partition->total_executed;
        suspended_before += partition->total_suspended;
      }
    }
    std::vector<EventBatch> derived(work.size());
    {
      CAESAR_TRACE_SPAN("tick");
      if (executor_ == nullptr) {
        for (size_t w = 0; w < work.size(); ++w) {
          CAESAR_TRACE_SPAN("transaction");
          ProcessTransaction(work[w].first, t, *work[w].second, &derived[w],
                             /*worker=*/0);
        }
      } else {
        // Every tick goes through the pool. Exactly one worker executes a
        // partition's transaction per tick (pinned: always its list owner;
        // stealing: whoever claims it), so partition state is
        // single-writer without locks, and metrics record into the
        // executing worker's shard to keep that single-writer rule.
        executor_->ExecuteTick(work.size(), shard_scratch_.data(),
                               weight_scratch_.data(),
                               [&](size_t w, int worker) {
                                 TraceScope worker_trace(trace_.get());
                                 CAESAR_TRACE_SPAN("transaction");
                                 ProcessTransaction(work[w].first, t,
                                                    *work[w].second,
                                                    &derived[w], worker);
                               });
      }
    }
    double dt = watch.ElapsedSeconds();
    stats.cpu_seconds += dt;

    // Virtual clock: queueing latency under the modeled arrival schedule.
    double arrival = static_cast<double>(t) * tick_wall;
    vclock_completion_ = std::max(vclock_completion_, arrival) + dt;
    double lat = (vclock_completion_ - arrival) * options_.accel;
    latency.Add(lat);

    // Collect derived events (deterministic partition order).
    EventBatch tick_derived;
    int64_t tick_derived_count = 0;
    for (EventBatch& batch : derived) {
      for (EventPtr& event : batch) {
        ++stats.derived_events;
        ++tick_derived_count;
        ++stats.derived_by_type[plan_.registry->type(event->type_id()).name];
        if (options_.collect_outputs && outputs != nullptr) {
          outputs->push_back(event);
        }
        if (observer_) tick_derived.push_back(std::move(event));
      }
    }
    if (observer_) observer_(t, tick_derived);

    // Per-tick telemetry: the deterministic histograms, the wall-clock
    // stats, and one timeline point. The barrier ordered every worker
    // write before this read.
    if (tick_telemetry) {
      ++tick_metrics_.ticks;
      tick_metrics_.events_per_tick.Add(static_cast<uint64_t>(j - i));
      tick_metrics_.partitions_per_tick.Add(
          static_cast<uint64_t>(work.size()));
      tick_metrics_.derived_per_tick.Add(
          static_cast<uint64_t>(tick_derived_count));
      int64_t context_switches = 0;
      int64_t executed_after = 0;
      int64_t suspended_after = 0;
      for (size_t w = 0; w < work.size(); ++w) {
        context_switches +=
            static_cast<int64_t>(work[w].first->contexts->version() -
                                 context_version_scratch_[w]);
        executed_after += work[w].first->total_executed;
        suspended_after += work[w].first->total_suspended;
      }
      tick_metrics_.context_switches_per_tick.Add(
          static_cast<uint64_t>(context_switches));
      tick_metrics_.scheduler_seconds.Add(dt);
      // In parallel mode the scheduler spends the tick blocked on the
      // pool's barrier, so dt is the per-tick barrier wait.
      if (executor_ != nullptr) tick_metrics_.barrier_wait_seconds.Add(dt);
      TimelinePoint point;
      point.time = t;
      point.input_events = static_cast<int64_t>(j - i);
      point.derived_events = tick_derived_count;
      point.partitions = static_cast<int64_t>(work.size());
      point.executed_chains = executed_after - executed_before;
      point.suspended_chains = suspended_after - suspended_before;
      point.context_switches = context_switches;
      timeline_->Push(point);
    }

    // Periodic garbage collection of stale operator state.
    if (t - last_gc_ >= options_.gc_interval) {
      last_gc_ = t;
      // Clamp: early in the stream (t < gc_horizon) the naive t - horizon
      // underflows below the epoch; nothing can be older than time 0, so 0
      // is the correct cut-off.
      Timestamp horizon =
          t >= options_.gc_horizon ? t - options_.gc_horizon : 0;
      CAESAR_TRACE_SPAN("gc");
      Stopwatch gc_watch;
      for (auto& [key, partition] : partitions_) {
        for (auto* states : {&partition->deriving, &partition->processing}) {
          for (QueryState& query : *states) {
            for (auto& op : query.chain.ops) op->ExpireBefore(horizon);
            for (auto& guard : query.guards) {
              for (auto& op : guard.chain.ops) op->ExpireBefore(horizon);
            }
          }
        }
      }
      if (tick_telemetry) {
        ++tick_metrics_.gc_runs;
        tick_metrics_.gc_horizon_min =
            std::min(tick_metrics_.gc_horizon_min, horizon);
        tick_metrics_.gc_pause_seconds.Add(gc_watch.ElapsedSeconds());
      }
    }

    last_processed_tick_ = t;
    any_tick_processed_ = true;
    i = j;
  }

  // Group commit: one commit record seals the whole batch (fsync per the
  // policy), then the checkpoint cadence gets its chance at the boundary.
  if (durability_ != nullptr && !replaying_) {
    CAESAR_RETURN_IF_ERROR(
        durability_->CommitBatch(SerializeIngestSnapshot()));
    if (any_tick_processed_ &&
        durability_->ShouldCheckpoint(last_processed_tick_)) {
      CAESAR_RETURN_IF_ERROR(
          durability_->WriteCheckpoint(last_processed_tick_,
                                       SerializeState()));
    }
  }

  stats.max_latency = latency.max();
  stats.mean_latency = latency.mean();
  uint64_t ops_after = 0;
  for (const auto& [key, partition] : partitions_) {
    ops_after += partition->ops_counter;
    stats.suspended_chains += partition->suspended_chains;
    stats.executed_chains += partition->executed_chains;
    stats.transactions += partition->transactions;
    partition->suspended_chains = 0;
    partition->executed_chains = 0;
    partition->transactions = 0;
  }
  stats.ops_executed = ops_after - ops_before;
  stats.partitions = static_cast<int64_t>(partitions_.size());
  if (executor_ != nullptr) {
    const ExecutorMetrics& exec = executor_->metrics();
    stats.parallel_ticks =
        static_cast<int64_t>(exec.ticks - exec_before.ticks);
    stats.parallel_tasks =
        static_cast<int64_t>(exec.tasks - exec_before.tasks);
    stats.shard_imbalance =
        static_cast<int64_t>(exec.imbalance - exec_before.imbalance);
    stats.tasks_stolen = static_cast<int64_t>(exec.steals - exec_before.steals);
    stats.barrier_wait_seconds =
        exec.barrier_wait.sum() - exec_before.barrier_wait.sum();
  }
  stats.events_reordered = ingest_metrics_.reordered - ingest_before.reordered;
  stats.events_dropped_late =
      ingest_metrics_.dropped_late - ingest_before.dropped_late;
  stats.events_quarantined =
      ingest_metrics_.quarantined - ingest_before.quarantined;
  if (durability_ != nullptr) {
    const DurabilityCounters& dur = durability_->counters();
    stats.wal_records = dur.wal_records - durability_before.wal_records;
    stats.wal_bytes = dur.wal_bytes - durability_before.wal_bytes;
    stats.fsyncs = dur.fsyncs - durability_before.fsyncs;
    stats.checkpoints_written =
        dur.checkpoints_written - durability_before.checkpoints_written;
  }
  return stats;
}

void Engine::ProcessTransaction(PartitionState* partition, Timestamp t,
                                const EventBatch& events,
                                EventBatch* derived, int worker) {
  ++partition->transactions;
  EventBatch& pool = partition->pool;
  pool.clear();
  pool.insert(pool.end(), events.begin(), events.end());

  // Phase A: context derivation. Phase B: context processing. Queries see
  // the pool slice that exists when their turn comes (topological order
  // guarantees producers run first).
  for (auto* states : {&partition->deriving, &partition->processing}) {
    for (QueryState& query : *states) {
      EventBatch out;
      RunQuery(partition, &query, pool, t, &out, worker);
      if (query.spec->output_type != kInvalidTypeId) {
        for (EventPtr& event : out) {
          pool.push_back(event);
          derived->push_back(std::move(event));
        }
      }
    }
  }

  // Registry instruments: each transaction records into the shard of the
  // worker that *executed* it (serial mode records into shard 0), so
  // counter slots are uncontended and histogram shards stay single-writer
  // even when stealing moves a partition between workers. Merged totals
  // are commutative sums, so they don't depend on who executed what.
  if (registry_ != nullptr) {
    ctr_transactions_->Add(worker, 1);
    ctr_input_events_->Add(worker, static_cast<int64_t>(events.size()));
    ctr_derived_events_->Add(worker, static_cast<int64_t>(derived->size()));
    hist_transaction_events_->Add(worker, events.size());
    hist_transaction_derived_->Add(worker, derived->size());
  }
}

void Engine::RunQuery(PartitionState* partition, QueryState* query,
                      const EventBatch& pool, Timestamp t, EventBatch* out,
                      int worker) {
  OpExecContext ctx;
  ctx.registry = plan_.registry;
  ctx.now = t;
  ctx.ops_counter = &partition->ops_counter;

  // Context-independent baseline: private guards re-derive the contexts.
  if (query->private_contexts != nullptr) {
    ctx.contexts = query->private_contexts.get();
    EventBatch scratch_in, scratch_out;
    for (QueryState::GuardInstance& guard : query->guards) {
      // Guards mirror the shared deriving queries, including their window
      // transition bookkeeping against the private vector.
      ApplyWindowTransitions(guard.chain.ops, guard.gate,
                             *query->private_contexts, &guard.transition);
      const EventBatch* current = &pool;
      for (auto& op : guard.chain.ops) {
        scratch_out.clear();
        op->Process(*current, &scratch_out, &ctx);
        std::swap(scratch_in, scratch_out);
        current = &scratch_in;
        if (current->empty()) break;
      }
    }
  } else {
    ctx.contexts = partition->contexts.get();
  }

  // Window-transition bookkeeping runs after the guards so the private
  // vector (context-independent mode) is already up to date for this time
  // stamp, mirroring the shared derivation-before-processing order.
  HandleWindowTransitions(partition, query, t);

  // Main chain; an empty intermediate batch skips the rest of the chain —
  // with the context window pushed down this is the suspension of the whole
  // query during foreign contexts.
  // Per-invocation distributions go into the executing worker's shard rows
  // (hoisted pointer: one base computation per chain, not per op). Work
  // units are the deterministic execution-time measure of the cost model —
  // wall clock is tick-level telemetry. The slim counter rows are the
  // counters-only (gather_statistics without kOperator) path.
  OperatorHistograms* hist_rows =
      op_histograms_.empty()
          ? nullptr
          : op_histograms_[worker].data() + query->stats_row_base;
  EventBatch ping, pong;
  const EventBatch* current = &pool;
  bool suspended_at_bottom = false;
  for (size_t o = 0; o < query->chain.ops.size(); ++o) {
    pong.clear();
    uint64_t work_before = partition->ops_counter;
    query->chain.ops[o]->Process(*current, &pong, &ctx);
    if (hist_rows != nullptr) {
      OperatorHistograms& hist = hist_rows[o];
      hist.input_batch.Add(current->size());
      hist.output_batch.Add(pong.size());
      hist.work_per_invocation.Add(partition->ops_counter - work_before);
    } else if (!query->op_stats.empty()) {
      QueryState::OpCounters& op_stats = query->op_stats[o];
      ++op_stats.invocations;
      op_stats.input_events += current->size();
      op_stats.output_events += pong.size();
      op_stats.work_units += partition->ops_counter - work_before;
    }
    std::swap(ping, pong);
    current = &ping;
    if (current->empty()) {
      suspended_at_bottom =
          (o == 0 &&
           query->chain.ops[0]->kind() == Operator::Kind::kContextWindow &&
           !pool.empty());
      break;
    }
  }
  if (suspended_at_bottom) {
    ++partition->suspended_chains;
    ++partition->total_suspended;
  } else {
    ++partition->executed_chains;
    ++partition->total_executed;
  }
  if (current == &ping) {
    *out = std::move(ping);
  } else {
    *out = *current;  // pool passed through an empty chain (not expected)
  }
}

StatisticsReport Engine::CollectStatistics() const {
  StatisticsReport report;
  report.tenant = options_.tenant;
  report.granularity = options_.metrics;
  if (executor_ != nullptr) {
    report.executor_workers = executor_->num_workers();
    report.executor = executor_->metrics();
  }
  report.ingest = ingest_metrics_;
  report.analysis_diagnostics = analysis_diagnostics_;
  report.durability_mode = options_.durability.mode;
  if (durability_ != nullptr) report.durability = durability_->counters();
  report.recovered = recovered_;
  report.recovery_diagnostics = recovery_diagnostics_;
  if (options_.metrics >= MetricsGranularity::kEngine) {
    report.ticks = tick_metrics_;
    report.timeline = timeline_->Snapshot();
    report.timeline_dropped = timeline_->dropped();
    report.counters = registry_->SnapshotCounters();
    report.histograms = registry_->SnapshotHistograms();
  }
  for (int r = 0; r < kNumQuarantineReasons; ++r) {
    report.quarantine_by_reason[r] =
        quarantine_.count(static_cast<QuarantineReason>(r));
  }
  report.quarantine_by_partition = quarantine_.by_partition();
  // Aggregate by (phase position, op index) across partitions; the plan's
  // query order is identical in every partition. Rows exist whenever the
  // per-operator path is active (counters-only or histogram granularity).
  const bool per_op_rows = options_.gather_statistics ||
                           options_.metrics >= MetricsGranularity::kOperator;
  int64_t suspended = 0;
  int64_t executed = 0;
  bool first_partition = true;
  for (const auto& [key, partition] : partitions_) {
    suspended += partition->total_suspended;
    executed += partition->total_executed;
    if (!per_op_rows) continue;
    size_t row = 0;
    for (const auto* states : {&partition->deriving, &partition->processing}) {
      for (const QueryState& query : *states) {
        for (size_t o = 0; o < query.chain.ops.size(); ++o) {
          if (first_partition) {
            QueryOperatorStats entry;
            entry.query = query.spec->name;
            entry.op_index = static_cast<int>(o);
            entry.kind = query.chain.ops[o]->kind();
            entry.description = query.chain.ops[o]->DebugString();
            report.operators.push_back(std::move(entry));
          }
          if (!query.op_stats.empty()) {
            OperatorStats& stats = report.operators[row].stats;
            stats.invocations += query.op_stats[o].invocations;
            stats.input_events += query.op_stats[o].input_events;
            stats.output_events += query.op_stats[o].output_events;
            stats.work_units += query.op_stats[o].work_units;
          }
          ++row;
        }
      }
    }
    first_partition = false;
  }
  // Fold the per-worker histogram shards into the rows. Index-wise merge is
  // commutative addition, so the totals do not depend on the shard count or
  // the partition-to-worker assignment. The histograms subsume the counters
  // at this granularity: every invocation added once to each distribution,
  // so count/sums are exactly the invocation/event/work totals.
  for (const std::vector<OperatorHistograms>& shard : op_histograms_) {
    for (size_t r = 0; r < shard.size() && r < report.operators.size(); ++r) {
      OperatorStats& stats = report.operators[r].stats;
      stats.input_batch.Merge(shard[r].input_batch);
      stats.output_batch.Merge(shard[r].output_batch);
      stats.work_per_invocation.Merge(shard[r].work_per_invocation);
    }
  }
  if (!op_histograms_.empty()) {
    for (QueryOperatorStats& row : report.operators) {
      row.stats.invocations = static_cast<uint64_t>(row.stats.input_batch.count());
      row.stats.input_events = row.stats.input_batch.sum();
      row.stats.output_events = row.stats.output_batch.sum();
      row.stats.work_units = row.stats.work_per_invocation.sum();
    }
  }
  if (suspended + executed > 0) {
    report.observed_context_activity =
        static_cast<double>(executed) / static_cast<double>(suspended + executed);
  }
  return report;
}

void Engine::HandleWindowTransitions(PartitionState* partition,
                                     QueryState* query, Timestamp t) {
  (void)t;
  const ContextBitVector& contexts = query->private_contexts != nullptr
                                         ? *query->private_contexts
                                         : *partition->contexts;
  ApplyWindowTransitions(query->chain.ops, query->gate, contexts,
                         &query->transition);
}

// --- Durability: state serialization and crash recovery --------------------

namespace {

constexpr uint8_t kSnapshotVersion = 1;    // per-batch commit snapshot
constexpr uint8_t kCheckpointVersion = 1;  // full checkpoint payload

void SaveTransition(StateWriter* w, const TransitionState& t) {
  w->Bool(t.was_active);
  w->U64(t.last_active_bits);
}

void LoadTransition(StateReader* r, TransitionState* t) {
  t->was_active = r->Bool();
  t->last_active_bits = r->U64();
}

// Each operator's state is length-framed so a loader can verify the
// operator consumed exactly the bytes its saver produced — a plan/state
// mismatch fails loudly at the offending operator instead of desyncing
// the rest of the payload.
void SaveChainOps(StateWriter* w, const OpChain& chain) {
  for (const auto& op : chain.ops) {
    StateWriter op_w;
    op->SaveState(&op_w);
    w->Str(op_w.data());
  }
}

Status LoadChainOps(StateReader* r, OpChain* chain, const std::string& what) {
  for (auto& op : chain->ops) {
    std::string bytes = r->Str();
    if (!r->ok()) return Status::DataLoss(what + ": truncated operator state");
    StateReader op_r(bytes);
    CAESAR_RETURN_IF_ERROR(op->LoadState(&op_r));
    CAESAR_RETURN_IF_ERROR(op_r.CheckFullyConsumed(what));
  }
  return Status::Ok();
}

}  // namespace

std::string Engine::SerializeIngestSnapshot() const {
  // Absolute values, not deltas: re-restoring the same snapshot is
  // idempotent, so replay can apply it after every batch unconditionally.
  StateWriter w;
  w.U8(kSnapshotVersion);
  w.I64(ingest_metrics_.admitted);
  w.I64(ingest_metrics_.reordered);
  w.I64(ingest_metrics_.dropped_late);
  w.I64(ingest_metrics_.quarantined);
  w.I64(ingest_metrics_.max_observed_lateness);
  w.Bool(drop_any_admitted_);
  w.I64(drop_max_admitted_);
  w.Bool(reorder_ != nullptr);
  if (reorder_ != nullptr) reorder_->Save(&w);
  quarantine_.Save(&w);
  w.F64(vclock_completion_);
  w.I64(last_gc_);
  w.Bool(any_tick_processed_);
  w.I64(last_processed_tick_);
  return w.Take();
}

Status Engine::RestoreIngestSnapshot(std::string_view snapshot) {
  StateReader r(snapshot);
  uint8_t version = r.U8();
  if (r.ok() && version != kSnapshotVersion) {
    return Status::DataLoss("unsupported commit snapshot version " +
                            std::to_string(version));
  }
  ingest_metrics_.admitted = r.I64();
  ingest_metrics_.reordered = r.I64();
  ingest_metrics_.dropped_late = r.I64();
  ingest_metrics_.quarantined = r.I64();
  ingest_metrics_.max_observed_lateness = r.I64();
  drop_any_admitted_ = r.Bool();
  drop_max_admitted_ = r.I64();
  bool has_reorder = r.Bool();
  if (r.ok() && has_reorder != (reorder_ != nullptr)) {
    return Status::DataLoss(
        "commit snapshot ingest policy does not match the engine's");
  }
  if (reorder_ != nullptr) CAESAR_RETURN_IF_ERROR(reorder_->Load(&r));
  CAESAR_RETURN_IF_ERROR(quarantine_.Load(&r));
  vclock_completion_ = r.F64();
  last_gc_ = r.I64();
  any_tick_processed_ = r.Bool();
  last_processed_tick_ = r.I64();
  return r.CheckFullyConsumed("commit snapshot");
}

std::string Engine::SerializeState() const {
  // Partition iteration is over a std::map (key ascending) and every nested
  // container either preserves insertion order or is explicitly ordered by
  // its saver, so identical engine state yields identical checkpoint bytes.
  // Wall-clock telemetry (tick metrics, timeline, registry, histogram
  // shards) is deliberately not persisted: it restarts after recovery.
  StateWriter w;
  w.U8(kCheckpointVersion);
  w.Str(SerializeIngestSnapshot());
  w.U32(static_cast<uint32_t>(partitions_.size()));
  for (const auto& [key, partition] : partitions_) {
    w.U64(key);
    partition->contexts->Save(&w);
    w.U64(partition->ops_counter);
    w.I64(partition->total_suspended);
    w.I64(partition->total_executed);
    for (const auto* states : {&partition->deriving, &partition->processing}) {
      w.U32(static_cast<uint32_t>(states->size()));
      for (const QueryState& query : *states) {
        SaveTransition(&w, query.transition);
        w.U32(static_cast<uint32_t>(query.guards.size()));
        for (const QueryState::GuardInstance& guard : query.guards) {
          SaveTransition(&w, guard.transition);
          SaveChainOps(&w, guard.chain);
        }
        w.Bool(query.private_contexts != nullptr);
        if (query.private_contexts != nullptr) {
          query.private_contexts->Save(&w);
        }
        SaveChainOps(&w, query.chain);
        w.Bool(!query.op_stats.empty());
        for (const QueryState::OpCounters& op_stats : query.op_stats) {
          w.U64(op_stats.invocations);
          w.U64(op_stats.input_events);
          w.U64(op_stats.output_events);
          w.U64(op_stats.work_units);
        }
      }
    }
  }
  return w.Take();
}

Status Engine::RestoreState(std::string_view payload) {
  StateReader r(payload);
  uint8_t version = r.U8();
  if (r.ok() && version != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version));
  }
  std::string snapshot = r.Str();
  if (!r.ok()) return Status::DataLoss("checkpoint: truncated payload");
  CAESAR_RETURN_IF_ERROR(RestoreIngestSnapshot(snapshot));
  uint32_t n_partitions = r.U32();
  for (uint32_t p = 0; r.ok() && p < n_partitions; ++p) {
    uint64_t key = r.U64();
    if (!r.ok()) break;
    PartitionState* partition = GetOrCreatePartition(key);
    CAESAR_RETURN_IF_ERROR(partition->contexts->Load(&r));
    partition->ops_counter = r.U64();
    partition->total_suspended = r.I64();
    partition->total_executed = r.I64();
    for (auto* states : {&partition->deriving, &partition->processing}) {
      uint32_t n_queries = r.U32();
      if (r.ok() && n_queries != states->size()) {
        return Status::DataLoss(
            "checkpoint query count does not match the plan");
      }
      for (QueryState& query : *states) {
        LoadTransition(&r, &query.transition);
        uint32_t n_guards = r.U32();
        if (r.ok() && n_guards != query.guards.size()) {
          return Status::DataLoss(
              "checkpoint guard count does not match the plan");
        }
        for (QueryState::GuardInstance& guard : query.guards) {
          LoadTransition(&r, &guard.transition);
          CAESAR_RETURN_IF_ERROR(
              LoadChainOps(&r, &guard.chain, "checkpoint guard operator"));
        }
        bool has_private = r.Bool();
        if (r.ok() && has_private != (query.private_contexts != nullptr)) {
          return Status::DataLoss(
              "checkpoint guard mode does not match the plan");
        }
        if (query.private_contexts != nullptr) {
          CAESAR_RETURN_IF_ERROR(query.private_contexts->Load(&r));
        }
        CAESAR_RETURN_IF_ERROR(
            LoadChainOps(&r, &query.chain, "checkpoint operator"));
        bool has_op_stats = r.Bool();
        if (r.ok() && has_op_stats != !query.op_stats.empty()) {
          return Status::DataLoss(
              "checkpoint statistics mode does not match the engine's");
        }
        for (QueryState::OpCounters& op_stats : query.op_stats) {
          op_stats.invocations = r.U64();
          op_stats.input_events = r.U64();
          op_stats.output_events = r.U64();
          op_stats.work_units = r.U64();
        }
      }
    }
  }
  return r.CheckFullyConsumed("checkpoint payload");
}

Status Engine::FinishRecovery(RecoveryScan scan) {
  recovered_ = true;
  recovery_diagnostics_.reserve(scan.diagnostics.size());
  for (const Diagnostic& diag : scan.diagnostics) {
    recovery_diagnostics_.push_back(FormatDiagnostic(diag));
  }
  if (scan.checkpoint_found) {
    CAESAR_RETURN_IF_ERROR(RestoreState(scan.checkpoint.payload));
  }
  // Replay the committed WAL suffix through the normal scheduler path.
  // Events re-enter in released (time) order, so every ingest policy admits
  // them unchanged; GC, window transitions, and the deterministic telemetry
  // replicate exactly. The commit snapshot then restores what replay cannot
  // re-derive (quarantine contents, the virtual clock, lateness marks).
  int64_t replayed = 0;
  replaying_ = true;
  for (const WalBatch& batch : scan.batches) {
    EventBatch admitted;
    for (const auto& [tick, events] : batch.ticks) {
      admitted.insert(admitted.end(), events.begin(), events.end());
    }
    replayed += static_cast<int64_t>(admitted.size());
    Result<RunStats> run = Run(admitted, nullptr);
    if (!run.ok()) {
      replaying_ = false;
      return run.status();
    }
    Status snapshot = RestoreIngestSnapshot(batch.snapshot);
    if (!snapshot.ok()) {
      replaying_ = false;
      return snapshot;
    }
  }
  replaying_ = false;
  Timestamp anchor = 0;
  if (scan.checkpoint_found) {
    anchor = scan.checkpoint.last_tick;
  } else if (!scan.batches.empty() && !scan.batches.front().ticks.empty()) {
    anchor = scan.batches.front().ticks.front().first;
  }
  CAESAR_ASSIGN_OR_RETURN(
      durability_, DurabilityManager::OpenAfterRecovery(options_.durability,
                                                        scan, anchor,
                                                        replayed));
  return Status::Ok();
}

Result<std::unique_ptr<Engine>> Engine::Recover(ExecutablePlan plan,
                                                EngineOptions options) {
  CAESAR_RETURN_IF_ERROR(options.Validate());
  if (options.durability.mode == DurabilityMode::kOff) {
    return Status::InvalidArgument(
        "Engine::Recover requires EngineOptions::durability.mode != off");
  }
  CAESAR_ASSIGN_OR_RETURN(RecoveryScan scan,
                          ScanForRecovery(options.durability));
  auto engine = std::make_unique<Engine>(std::move(plan), std::move(options));
  CAESAR_RETURN_IF_ERROR(engine->FinishRecovery(std::move(scan)));
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::Recover(const CaesarModel& model,
                                                const PlanOptions& plan_options,
                                                EngineOptions options) {
  // No analysis pass: the model already ran (and was analyzed, if asked)
  // before the crash; recovery rebuilds the same plan and moves on.
  CAESAR_RETURN_IF_ERROR(options.Validate());
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan plan,
                          TranslateModel(model, plan_options));
  return Recover(std::move(plan), std::move(options));
}

uint64_t Engine::durable_batch_seq() const {
  return durability_ != nullptr ? durability_->durable_batch_seq() : 0;
}

DurabilityCounters Engine::durability_counters() const {
  return durability_ != nullptr ? durability_->counters()
                                : DurabilityCounters{};
}

}  // namespace caesar
