// The context bit vector (Section 6.2 of the paper): per stream partition,
// one bit per context type recording whether a window of that type currently
// holds, plus the time stamp of the last update and, per context, the
// activation time of the current window (needed by the context-window
// operator to scope complex events to the current window).
//
// "The entries are sorted alphabetically by context names to allow for
// constant time access" — we go one step further and use dense integer
// context ids assigned by the model; lookups are array indexing.

#ifndef CAESAR_RUNTIME_CONTEXT_VECTOR_H_
#define CAESAR_RUNTIME_CONTEXT_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "event/event.h"

namespace caesar {

class StateWriter;
class StateReader;

// Maximum number of context types per model: one bit each in a single word.
inline constexpr int kMaxContexts = 64;

// Current context windows of one stream partition.
class ContextBitVector {
 public:
  // `num_contexts` context types; `default_context` initially holds
  // (the paper's c_d holds when no other context does, e.g. at startup).
  ContextBitVector(int num_contexts, int default_context);

  int num_contexts() const { return num_contexts_; }
  int default_context() const { return default_context_; }

  // True if a window of context `c` currently holds. O(1).
  bool IsActive(int c) const { return (bits_ >> c) & 1; }

  // True if any context in the mask holds.
  bool AnyActive(uint64_t mask) const { return (bits_ & mask) != 0; }

  // Start time of the current window of `c`; meaningful only when active.
  Timestamp ActiveSince(int c) const { return since_[c]; }

  // Time stamp of the last update (W.time).
  Timestamp time() const { return time_; }

  // Context initiation CI_c: starts a window of `c` at `now` (no-op when one
  // already holds, per the operator definition) and removes the default
  // context window if present (and c is not the default itself).
  // Returns true if the window was newly initiated.
  bool Initiate(int c, Timestamp now);

  // Context termination CT_c: ends the window of `c`; if no window remains,
  // the default context window begins. Returns true if a window was ended.
  bool Terminate(int c, Timestamp now);

  // Number of currently active context windows.
  int ActiveCount() const { return __builtin_popcountll(bits_); }

  uint64_t bits() const { return bits_; }

  // Monotone counter bumped on every Initiate/Terminate that changed the
  // vector; lets the runtime detect window transitions cheaply.
  uint64_t version() const { return version_; }

  std::string ToString() const;

  // Checkpoint serialization (durability/serde.h). Configuration
  // (num_contexts, default_context) comes from the model, not the bytes;
  // Load validates the window count against it.
  void Save(StateWriter* w) const;
  Status Load(StateReader* r);

 private:
  int num_contexts_;
  int default_context_;
  uint64_t bits_ = 0;
  Timestamp time_ = 0;
  uint64_t version_ = 0;
  std::vector<Timestamp> since_;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_CONTEXT_VECTOR_H_
