// Engine observability: the metrics registry, the power-of-2 histograms,
// the per-tick telemetry, the trace-span facility, and the snapshot
// exporters (JSON + Prometheus text exposition).
//
// The paper's Fig. 8 closes a loop between a statistics gatherer and the
// optimizer; plan adaptation (and any production deployment) lives or dies
// on the quality of the observed statistics. This layer therefore records
// at three levels:
//
//  - per-operator: input/output events and work units per invocation as
//    fixed-bucket power-of-2 histograms, carried inside OperatorStats
//    (runtime/statistics.h) so they aggregate across partitions exactly
//    like the existing counters;
//  - per-tick: scheduler time, ingest admission, GC pauses, barrier wait
//    (wall clock) plus events/partitions/derived/context switches per tick
//    (deterministic counts) — see TickMetrics;
//  - per-engine: quarantine/reorder rates (derived from IngestMetrics at
//    export time) and context activity over time as a bounded ring-buffer
//    timeline — see Timeline.
//
// Determinism contract: every *count* recorded here (histogram buckets,
// counter totals, timeline points) is a pure function of the input stream
// and the plan — identical for 1/2/4/8 worker threads. Wall-clock values
// are not; the exporters therefore take ExportOptions::deterministic,
// which drops all timing and thread-layout-dependent fields and yields
// byte-identical output across thread counts (covered by the parallel
// determinism suite).
//
// Threading: ShardedCounter is lock-free (one relaxed, cache-line-padded
// atomic slot per worker); ShardedHistogram relies on the engine's sharded
// ownership instead (each worker writes only its own shard; the per-tick
// barrier orders snapshots after all writes). Everything else is written
// from the scheduler thread only.

#ifndef CAESAR_RUNTIME_OBSERVABILITY_H_
#define CAESAR_RUNTIME_OBSERVABILITY_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "event/event.h"

namespace caesar {

struct StatisticsReport;

// How much runtime telemetry the engine records.
enum class MetricsGranularity : int8_t {
  kOff = 0,   // no telemetry beyond the plain RunStats counters
  kEngine,    // tick metrics, timeline, registry counters/histograms
  kOperator,  // kEngine plus per-operator histograms in OperatorStats
};

// Human-readable granularity name ("off", "engine", "operator").
const char* MetricsGranularityName(MetricsGranularity granularity);

// Parses a granularity name; returns false on an unknown name.
bool ParseMetricsGranularity(const std::string& name,
                             MetricsGranularity* granularity);

// Fixed-bucket power-of-2 histogram over non-negative integer values.
// Bucket i counts values v with bit_width(v) == i: bucket 0 holds v = 0,
// bucket i >= 1 holds [2^(i-1), 2^i). The bucket layout is fixed at compile
// time, so merging is index-wise addition and recording is a bit_width plus
// two increments — cheap enough for per-operator hot paths.
class Pow2Histogram {
 public:
  // bit_width of a uint64_t is 0..64.
  static constexpr int kNumBuckets = 65;

  static int BucketOf(uint64_t value) {
    return static_cast<int>(std::bit_width(value));
  }
  // Smallest value counted by bucket i (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(int i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  // Largest value counted by bucket i (inclusive; 0, 1, 3, 7, 15, ...).
  static uint64_t BucketUpperBound(int i) {
    return i >= 64 ? std::numeric_limits<uint64_t>::max()
                   : (uint64_t{1} << i) - 1;
  }

  void Add(uint64_t value) {
    ++buckets_[BucketOf(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void Merge(const Pow2Histogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  int64_t bucket(int i) const { return buckets_[i]; }
  int64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Approximate quantile (q in [0, 1]): the upper bound of the bucket
  // containing the q-th value. Exact for values that are bucket singletons
  // (0 and 1); otherwise within a factor of 2.
  uint64_t Quantile(double q) const;

  // Sparse one-liner: "count=N mean=M max=X [0]=c0 [1,2)=c1 ..." with empty
  // buckets omitted.
  std::string ToString() const;

 private:
  // Header fields before the bucket array: small values (the common case —
  // batch sizes and per-invocation work are tiny) land in low buckets, so
  // Add touches a single cache line instead of two half a KiB apart.
  int64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  int64_t buckets_[kNumBuckets] = {};
};

// Lock-free per-worker sharded counter: each worker increments its own
// cache-line-padded relaxed atomic; readers sum the slots. Totals are exact
// whenever no increment is in flight (the engine reads between ticks, after
// the barrier).
class ShardedCounter {
 public:
  explicit ShardedCounter(int num_shards);

  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(int shard, int64_t delta) {
    slots_[shard].value.fetch_add(delta, std::memory_order_relaxed);
  }

  int num_shards() const { return num_shards_; }
  int64_t shard_value(int shard) const {
    return slots_[shard].value.load(std::memory_order_relaxed);
  }
  int64_t Total() const;

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> value{0};
  };
  const int num_shards_;
  std::unique_ptr<Slot[]> slots_;
};

// Per-worker sharded power-of-2 histogram. Not atomic: shard i must only
// ever be written by worker i (the engine's sharded ownership), and merged
// snapshots must be taken after a tick barrier. The merged content is
// deterministic whenever the recorded values are.
class ShardedHistogram {
 public:
  explicit ShardedHistogram(int num_shards);

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  void Add(int shard, uint64_t value) { shards_[shard].histogram.Add(value); }

  int num_shards() const { return num_shards_; }
  Pow2Histogram Merged() const;

 private:
  struct alignas(64) Shard {
    Pow2Histogram histogram;
  };
  const int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

// Snapshot of one registry counter: the total plus the per-shard (per
// worker) breakdown. The total is deterministic; the breakdown depends on
// the worker count and is excluded from deterministic exports.
struct CounterSnapshot {
  std::string name;
  std::string help;
  int64_t total = 0;
  std::vector<int64_t> per_shard;
};

// Snapshot of one registry histogram, merged across shards.
struct HistogramSnapshot {
  std::string name;
  std::string help;
  Pow2Histogram merged;
};

// Registry of named sharded counters and histograms. Registration happens
// at setup time (engine construction) and returns stable pointers for the
// hot path; Snapshot* may be called whenever no worker is inside a tick.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_shards);

  // Registers (or returns the existing) instrument. Not thread-safe: call
  // before workers start recording.
  ShardedCounter* AddCounter(const std::string& name, const std::string& help);
  ShardedHistogram* AddHistogram(const std::string& name,
                                 const std::string& help);

  int num_shards() const { return num_shards_; }

  // Snapshots in name order (deterministic iteration).
  std::vector<CounterSnapshot> SnapshotCounters() const;
  std::vector<HistogramSnapshot> SnapshotHistograms() const;

 private:
  template <typename T>
  struct Named {
    std::string help;
    std::unique_ptr<T> instrument;
  };
  const int num_shards_;
  std::map<std::string, Named<ShardedCounter>> counters_;
  std::map<std::string, Named<ShardedHistogram>> histograms_;
};

// Scheduler-side per-tick telemetry. Histograms and counters are
// deterministic; the RunningStats fields are wall clock and are excluded
// from deterministic exports.
struct TickMetrics {
  int64_t ticks = 0;
  int64_t gc_runs = 0;
  // Smallest horizon ever passed to ExpireBefore by the periodic GC;
  // meaningful once gc_runs > 0. The GC-horizon regression test asserts
  // this never goes below 0 (the pre-clamp bug made it negative when the
  // stream started inside the first gc_horizon ticks).
  Timestamp gc_horizon_min = std::numeric_limits<Timestamp>::max();

  Pow2Histogram events_per_tick;
  Pow2Histogram partitions_per_tick;
  Pow2Histogram derived_per_tick;
  Pow2Histogram context_switches_per_tick;

  // Wall clock (nondeterministic): scheduler time per tick, ingest
  // admission time per Run, GC pause per GC run, barrier wait per tick
  // (parallel mode only).
  RunningStats scheduler_seconds;
  RunningStats ingest_seconds;
  RunningStats gc_pause_seconds;
  RunningStats barrier_wait_seconds;

  void Merge(const TickMetrics& other);
};

// One point of the engine's activity timeline: the deterministic summary
// of one tick, answering "what was the engine doing over time" (context
// activity, load shape) without a full trace.
struct TimelinePoint {
  Timestamp time = 0;
  int64_t input_events = 0;
  int64_t derived_events = 0;
  int64_t partitions = 0;        // partitions touched this tick
  int64_t executed_chains = 0;   // chain executions that ran this tick
  int64_t suspended_chains = 0;  // chain executions skipped (context closed)
  int64_t context_switches = 0;  // context vector transitions this tick

  // Fraction of chain executions that ran this tick (1.0 when idle).
  double activity() const {
    int64_t total = executed_chains + suspended_chains;
    return total == 0 ? 1.0
                      : static_cast<double>(executed_chains) /
                            static_cast<double>(total);
  }
};

// Bounded ring buffer of the most recent timeline points. Scheduler thread
// only. Dropped (overwritten) points stay counted in total_pushed().
class Timeline {
 public:
  explicit Timeline(size_t capacity);

  void Push(const TimelinePoint& point);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  int64_t total_pushed() const { return total_pushed_; }
  int64_t dropped() const {
    return total_pushed_ - static_cast<int64_t>(size());
  }

  // The retained points, oldest first.
  std::vector<TimelinePoint> Snapshot() const;

 private:
  const size_t capacity_;
  int64_t total_pushed_ = 0;
  std::vector<TimelinePoint> points_;  // ring; next_ is the write index
  size_t next_ = 0;
};

// ---------------------------------------------------------------------------
// Trace spans (Chrome trace_event format)
// ---------------------------------------------------------------------------

// Collects completed trace spans and renders them as a Chrome
// trace_event-format JSON file (load via chrome://tracing or Perfetto).
// Record is thread-safe (short critical section per span); spans carry a
// process-unique small thread id so worker lanes render separately.
class TraceRecorder {
 public:
  struct Span {
    const char* name;  // must outlive the recorder (use string literals)
    int64_t start_us;  // relative to the recorder's creation
    int64_t duration_us;
    uint32_t tid;
  };

  TraceRecorder();

  // Current wall position in recorder-relative microseconds.
  int64_t NowMicros() const;

  void Record(const char* name, int64_t start_us, int64_t duration_us);

  size_t size() const;
  std::vector<Span> Snapshot() const;

  // {"traceEvents":[...]} with one complete ("ph":"X") event per span.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  // The recorder spans of the calling thread report into; null disables
  // CAESAR_TRACE_SPAN on this thread (the default).
  static TraceRecorder* Current();

 private:
  friend class TraceScope;
  static void SetCurrent(TraceRecorder* recorder);

  int64_t epoch_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

// RAII: installs `recorder` as the calling thread's current trace sink and
// restores the previous one on destruction. Installing null is a cheap
// no-op scope (two thread-local writes), so callers need no branching.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* recorder);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* previous_;
};

// RAII span: measures from construction to destruction and reports into the
// thread's current recorder. With no recorder installed the cost is one
// thread-local load; compile out entirely with -DCAESAR_DISABLE_TRACING.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : recorder_(TraceRecorder::Current()), name_(name) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->Record(name_, start_us_, recorder_->NowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  int64_t start_us_ = 0;
};

#define CAESAR_TRACE_CONCAT_INNER(a, b) a##b
#define CAESAR_TRACE_CONCAT(a, b) CAESAR_TRACE_CONCAT_INNER(a, b)
#ifdef CAESAR_DISABLE_TRACING
#define CAESAR_TRACE_SPAN(name) \
  do {                          \
  } while (false)
#else
// Opens a span named `name` (a string literal) lasting until the end of the
// enclosing scope.
#define CAESAR_TRACE_SPAN(name) \
  ::caesar::TraceSpan CAESAR_TRACE_CONCAT(caesar_trace_span_, __LINE__)(name)
#endif

// ---------------------------------------------------------------------------
// Snapshot exporters
// ---------------------------------------------------------------------------

struct ExportOptions {
  // When true, drop every wall-clock timing and thread-layout-dependent
  // field (executor snapshot, per-shard counter breakdowns, *_seconds).
  // The remaining content is a pure function of the input stream and plan:
  // byte-identical across 1/2/4/8 worker threads.
  bool deterministic = false;
};

// Renders a StatisticsReport as a single JSON object (stable key order,
// schema_version tagged; see DESIGN.md section 8).
std::string StatisticsToJson(const StatisticsReport& report,
                             const ExportOptions& options = {});

// Renders a StatisticsReport in the Prometheus text exposition format
// (counters as `caesar_*_total`, histograms with cumulative `le` buckets).
std::string StatisticsToPrometheus(const StatisticsReport& report,
                                   const ExportOptions& options = {});

}  // namespace caesar

#endif  // CAESAR_RUNTIME_OBSERVABILITY_H_
