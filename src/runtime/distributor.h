// The event distributor and streaming front-end (Fig. 8/9 of the paper).
//
// In a deployment, events arrive on multiple input connections (event
// producers) that are each internally time-ordered but mutually interleaved.
// The distributor buffers incoming events in per-source queues and tracks
// each source's *progress* (the highest time stamp received). The paper's
// time-driven scheduler "waits till the event distributor progress is larger
// than t" before executing the transactions of time stamp t — implemented
// here as a watermark: events up to min(progress over all sources) are
// released to the engine in global time order.
//
// StreamingEngine glues a distributor to an Engine: push events per source,
// call Advance() (or Flush() at end of stream) to run every released
// transaction.

#ifndef CAESAR_RUNTIME_DISTRIBUTOR_H_
#define CAESAR_RUNTIME_DISTRIBUTOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "runtime/engine.h"

namespace caesar {

// Buffers per-source event queues and releases a globally time-ordered
// stream up to the progress watermark.
class EventDistributor {
 public:
  explicit EventDistributor(int num_sources);

  int num_sources() const { return static_cast<int>(queues_.size()); }

  // Enqueues an event from `source`. Events of one source must arrive in
  // non-decreasing time order; a regression is rejected.
  Status Push(int source, EventPtr event);

  // Marks `source` as finished: it no longer constrains the watermark.
  void Close(int source);

  // The progress watermark: every event with time() <= watermark has been
  // seen by all (open) sources. kNoProgress until every source has pushed
  // or closed.
  static constexpr Timestamp kNoProgress = -1;
  Timestamp Watermark() const;

  // Moves all buffered events with time() <= Watermark() into `out`, in
  // global time order (stable across sources). Returns the count.
  size_t Release(EventBatch* out);

  // Moves *everything* still buffered into `out` (end of stream).
  size_t ReleaseAll(EventBatch* out);

  // Buffered events not yet released.
  size_t buffered() const;

 private:
  size_t ReleaseUpTo(Timestamp bound, EventBatch* out);

  struct SourceQueue {
    std::deque<EventPtr> events;
    Timestamp progress = kNoProgress;
    bool closed = false;
  };
  std::vector<SourceQueue> queues_;
};

// A push-based engine front-end over the distributor.
class StreamingEngine {
 public:
  StreamingEngine(std::unique_ptr<Engine> engine, int num_sources);

  // Pushes one event from `source`; transactions become runnable once every
  // source has progressed past their time stamp.
  Status Push(int source, EventPtr event);

  // Runs all currently released transactions; returns their stats (or the
  // engine's ingest error under IngestPolicy::kStrict).
  Result<RunStats> Advance(EventBatch* outputs = nullptr);

  // Closes all sources, drains the remaining buffer and runs it.
  Result<RunStats> Flush(EventBatch* outputs = nullptr);

  void CloseSource(int source) { distributor_.Close(source); }

  Engine& engine() { return *engine_; }
  const EventDistributor& distributor() const { return distributor_; }

 private:
  std::unique_ptr<Engine> engine_;
  EventDistributor distributor_;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_DISTRIBUTOR_H_
