#include "runtime/executor.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace caesar {

const char* SchedulerModeName(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kPinned:
      return "pinned";
    case SchedulerMode::kStealing:
      return "stealing";
  }
  return "?";
}

bool ParseSchedulerMode(const std::string& name, SchedulerMode* out) {
  if (name == "pinned") {
    *out = SchedulerMode::kPinned;
    return true;
  }
  if (name == "stealing") {
    *out = SchedulerMode::kStealing;
    return true;
  }
  return false;
}

SchedulerMode DefaultSchedulerMode() {
  static const SchedulerMode mode = []() {
    const char* env = std::getenv("CAESAR_SCHEDULER");
    SchedulerMode parsed = SchedulerMode::kPinned;
    if (env != nullptr && env[0] != '\0' &&
        !ParseSchedulerMode(env, &parsed)) {
      CAESAR_LOG_WARNING << "ignoring unknown CAESAR_SCHEDULER value '" << env
                         << "' (want pinned|stealing)";
    }
    return parsed;
  }();
  return mode;
}

ShardedExecutor::ShardedExecutor(int num_workers, SchedulerMode mode)
    : num_workers_(num_workers), mode_(mode), queues_(num_workers) {
  CAESAR_CHECK_GE(num_workers, 1);
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedExecutor::ExecuteTick(size_t count, const uint64_t* shards,
                                  const uint64_t* weights,
                                  const TickTask& task) {
  // Lay the tick out into per-worker task lists once, on the scheduler
  // thread (workers are idle between epochs). The list buffers are members
  // and keep their capacity, so the hot path allocates nothing per tick.
  CAESAR_CHECK_LE(count, size_t{UINT32_MAX});
  for (WorkerQueue& queue : queues_) {
    queue.tasks.clear();
    queue.executed = 0;
    queue.stolen = 0;
  }
  const uint64_t workers = static_cast<uint64_t>(num_workers_);
  for (size_t i = 0; i < count; ++i) {
    queues_[shards[i] % workers].tasks.push_back(static_cast<uint32_t>(i));
  }
  if (mode_ == SchedulerMode::kStealing) {
    if (count > claimed_capacity_) {
      size_t capacity = std::max(count, claimed_capacity_ * 2);
      claimed_ = std::make_unique<std::atomic<uint8_t>[]>(capacity);
      claimed_capacity_ = capacity;
    }
    // Relaxed stores: the epoch mutex below publishes them to the workers.
    for (size_t i = 0; i < count; ++i) {
      claimed_[i].store(0, std::memory_order_relaxed);
    }
  }

  Stopwatch wait;
  {
    std::unique_lock<std::mutex> lock(mu_);
    task_count_ = count;
    task_fn_ = &task;
    task_weights_ = weights;
    pending_ = num_workers_;
    ++epoch_;
    work_cv_.notify_all();
    // Explicit wait loop (not the predicate overload): the thread-safety
    // analysis cannot see that a predicate lambda runs with mu_ held.
    while (pending_ != 0) done_cv_.wait(lock);
    task_fn_ = nullptr;
    task_weights_ = nullptr;
  }

  // Executed-load tally from the per-worker counters the barrier just
  // ordered before us. Computed for every worker count — a 1-worker pool
  // records the same metric structure (imbalance 0) as a wide one, so
  // exports stay structurally identical across thread counts.
  uint64_t min_load = queues_[0].executed;
  uint64_t max_load = queues_[0].executed;
  uint64_t stolen = 0;
  for (const WorkerQueue& queue : queues_) {
    min_load = std::min(min_load, queue.executed);
    max_load = std::max(max_load, queue.executed);
    stolen += queue.stolen;
  }

  ++metrics_.ticks;
  metrics_.tasks += count;
  metrics_.tasks_per_tick.Add(count);
  metrics_.imbalance += max_load - min_load;
  metrics_.imbalance_per_tick.Add(max_load - min_load);
  metrics_.steals += stolen;
  metrics_.barrier_wait.Add(wait.ElapsedSeconds());
}

void ShardedExecutor::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  while (true) {
    const TickTask* fn;
    const uint64_t* weights;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Explicit wait loop — see the barrier wait in ExecuteTick.
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.wait(lock);
      if (shutdown_) return;
      seen_epoch = epoch_;
      fn = task_fn_;
      weights = task_weights_;
    }
    // Run this worker's part of the tick. The scheduler blocks until the
    // barrier below, so the queues, `fn` and the weights stay valid
    // throughout.
    WorkerQueue& own = queues_[worker_id];
    if (mode_ == SchedulerMode::kPinned) {
      uint64_t load = 0;
      for (uint32_t i : own.tasks) {
        (*fn)(i, worker_id);
        load += weights == nullptr ? 1 : weights[i];
      }
      own.executed = load;
    } else {
      RunStealingTick(worker_id, *fn, weights);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardedExecutor::RunStealingTick(int self, const TickTask& task,
                                      const uint64_t* weights) {
  WorkerQueue& own = queues_[self];
  // Claim decides the unique executor of a task; the relaxed pre-check
  // skips the RMW for tasks visibly taken already. No data travels through
  // the flag itself — partition state is handed between ticks via the
  // epoch mutex, and within a tick each task runs exactly once.
  auto try_claim = [this](uint32_t i) {
    return claimed_[i].load(std::memory_order_relaxed) == 0 &&
           claimed_[i].exchange(1, std::memory_order_acq_rel) == 0;
  };
  auto weight = [weights](uint32_t i) {
    return weights == nullptr ? uint64_t{1} : weights[i];
  };
  // Own list first, front to back (oldest assignment first)...
  for (uint32_t i : own.tasks) {
    if (try_claim(i)) {
      task(i, self);
      own.executed += weight(i);
    }
  }
  // ...then steal from victims' tails, walking away from the end the owner
  // is draining towards, so owner and thieves meet in the middle instead
  // of fighting over the same task.
  for (int hop = 1; hop < num_workers_; ++hop) {
    int victim = (self + hop) % num_workers_;
    const std::vector<uint32_t>& tasks = queues_[victim].tasks;
    for (size_t k = tasks.size(); k-- > 0;) {
      uint32_t i = tasks[k];
      if (try_claim(i)) {
        task(i, self);
        own.executed += weight(i);
        ++own.stolen;
      }
    }
  }
}

}  // namespace caesar
