#include "runtime/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace caesar {

ShardedExecutor::ShardedExecutor(int num_workers)
    : num_workers_(num_workers) {
  CAESAR_CHECK_GE(num_workers, 1);
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedExecutor::ExecuteTick(size_t count, const uint64_t* shards,
                                  const std::function<void(size_t)>& task) {
  // Tally per-worker load before dispatch (the shards array is the
  // scheduler's; workers only read it).
  uint64_t min_load = 0;
  uint64_t max_load = 0;
  if (count > 0 && num_workers_ > 1) {
    std::vector<uint64_t> load(num_workers_, 0);
    for (size_t i = 0; i < count; ++i) {
      ++load[shards[i] % static_cast<uint64_t>(num_workers_)];
    }
    min_load = *std::min_element(load.begin(), load.end());
    max_load = *std::max_element(load.begin(), load.end());
  }

  Stopwatch wait;
  std::unique_lock<std::mutex> lock(mu_);
  task_count_ = count;
  task_shards_ = shards;
  task_fn_ = &task;
  pending_ = num_workers_;
  ++epoch_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this]() { return pending_ == 0; });
  task_fn_ = nullptr;
  task_shards_ = nullptr;

  ++metrics_.ticks;
  metrics_.tasks += count;
  metrics_.tasks_per_tick.Add(count);
  metrics_.imbalance += max_load - min_load;
  metrics_.barrier_wait.Add(wait.ElapsedSeconds());
}

void ShardedExecutor::WorkerLoop(int worker_id) {
  const uint64_t self = static_cast<uint64_t>(worker_id);
  const uint64_t workers = static_cast<uint64_t>(num_workers_);
  uint64_t seen_epoch = 0;
  while (true) {
    size_t count;
    const uint64_t* shards;
    const std::function<void(size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&]() { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      count = task_count_;
      shards = task_shards_;
      fn = task_fn_;
    }
    // Run this worker's shard of the tick. The scheduler blocks until the
    // barrier below, so `shards`/`fn` stay valid throughout.
    for (size_t i = 0; i < count; ++i) {
      if (shards[i] % workers == self) (*fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace caesar
