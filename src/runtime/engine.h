// The CAESAR execution infrastructure (Section 6).
//
// The engine instantiates the executable plan per stream partition (per
// unidirectional road segment in Linear Road), maintains each partition's
// context bit vector, and processes the input stream as *stream
// transactions*: all events with the same application time stamp form one
// transaction per partition. The time-driven scheduler processes time stamps
// strictly in order; within a transaction, context derivation runs before
// context processing, so processing queries always observe the contexts
// derived at (or before) their time stamp — the paper's correctness
// criterion for conflicting reads/writes of shared context data.
//
// Context-aware routing and suspension: each query chain carries its
// context-window operator; with push-down the chain empties immediately for
// inactive contexts and the rest of the chain is skipped. Window
// transitions additionally manage the *context history*: when a query's
// (original) window ends its partial matches are discarded; across grouped
// windows of one original window they are retained, expiring one grouped
// window behind (Section 6.2).
//
// Latency model: processing cost is measured in wall time per time stamp;
// arrival times derive from application time at a configurable acceleration
// factor, and a virtual clock turns measured cost into queueing latency:
//   completion(t) = max(arrival(t), completion(prev)) + cost(t)
//   latency(t)   = (completion(t) - arrival(t)) * accel     [sim seconds]
// This keeps the experiments deterministic w.r.t. load shape while using
// real measured CPU cost.

#ifndef CAESAR_RUNTIME_ENGINE_H_
#define CAESAR_RUNTIME_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "durability/durability.h"
#include "plan/plan.h"
#include "runtime/context_vector.h"
#include "runtime/executor.h"
#include "runtime/ingest.h"
#include "runtime/statistics.h"

namespace caesar {

class CaesarModel;
struct PlanOptions;
class DurabilityManager;
struct RecoveryScan;

// What the model-based Engine::Create overload does with static-analysis
// results (analysis/analyzer.h). Ignored by the plan-based overload, which
// has no model to analyze.
enum class AnalysisMode : int8_t {
  kOff = 0,  // skip analysis
  kWarn,     // run it; diagnostics surface via CollectStatistics()
  kStrict,   // error-severity diagnostics reject Create with a Status
};

// Which implementation executes PATTERN operators (see compile/). The
// engine rewrites the plan's chains at construction; both implementations
// derive byte-identical event streams (the differential harness holds them
// to that), so the choice is purely a performance knob.
enum class PatternEngine : int8_t {
  kInterpreted = 0,  // algebra/pattern_op.h: scan every partial per event
  kCompiled,         // compile/: automaton runs, type-dispatched states
  kAuto,  // compile multi-position patterns; single-event matches stay
          // interpreted (pass-through has no state to dispatch)
};

const char* PatternEngineName(PatternEngine engine);
// Parses "interpreted" / "compiled" / "auto"; false on anything else.
bool ParsePatternEngine(const std::string& name, PatternEngine* out);

// Engine configuration.
struct EngineOptions {
  // Worker threads for per-partition transactions. 1 = serial on the
  // scheduler thread; > 1 creates a persistent ShardedExecutor whose
  // workers live for the lifetime of the Engine. Both modes derive
  // byte-identical event sequences (see runtime/executor.h).
  int num_threads = 1;

  // Task scheduler of the worker pool (see SchedulerMode): kPinned
  // statically assigns partitions to workers by key % num_threads;
  // kStealing lets idle workers claim whole-partition tasks from loaded
  // workers, which keeps skewed partition-key distributions from
  // saturating one worker. Derived output and deterministic metric
  // exports are byte-identical between the modes. Defaults to kPinned,
  // overridable process-wide via the CAESAR_SCHEDULER environment
  // variable (the CI stealing leg runs the whole suite that way).
  // Ignored when num_threads == 1.
  SchedulerMode scheduler = DefaultSchedulerMode();

  // Externally owned worker pool shared between engines (the caesard
  // server runs one Engine per tenant over one pool). When set it
  // overrides num_threads/scheduler: this engine dispatches its ticks to
  // the shared pool instead of creating its own. The pool must outlive
  // the engine, and callers must never run two engines that share a pool
  // concurrently — ExecuteTick is single-scheduler (the server's drain
  // loop serializes tenants). Derived output stays byte-identical to an
  // owned pool of the same width: determinism rests on the ordered merge,
  // not on who owns the workers.
  std::shared_ptr<ShardedExecutor> shared_executor;

  // Stable tenant label stamped into RunStats and StatisticsReport (and
  // from there into the JSON/Prometheus exports). Empty for library use —
  // existing exports and goldens are byte-identical to before the label
  // existed; the caesard server sets it to the tenant name so per-tenant
  // scrapes can tell engines apart.
  std::string tenant;

  // Acceleration of the latency model: how many simulated seconds arrive
  // per wall second of processing budget. Higher = heavier load.
  double accel = 100.0;

  // Simulated seconds per application tick (Linear Road: 1).
  double seconds_per_tick = 1.0;

  // Garbage collection cadence and horizon (ticks): every `gc_interval`
  // ticks, operator state older than `gc_horizon` is dropped.
  Timestamp gc_interval = 120;
  Timestamp gc_horizon = 900;

  // Collect derived events into the output batch passed to Run.
  bool collect_outputs = true;

  // Record per-operator statistics (the Fig. 8 statistics gatherer); adds a
  // small per-operator bookkeeping cost. Snapshot via CollectStatistics().
  bool gather_statistics = false;

  // Telemetry granularity (runtime/observability.h): kEngine records tick
  // metrics, the activity timeline, and the sharded registry counters;
  // kOperator additionally records per-operator histograms (implies the
  // per-operator statistics path). kOff costs nothing on the hot path.
  MetricsGranularity metrics = MetricsGranularity::kOff;

  // Record trace spans (scheduler ticks, ingest, GC, per-partition
  // transactions) into a Chrome trace_event-format recorder, exposed via
  // Engine::trace(). Independent of `metrics`.
  bool tracing = false;

  // When non-empty and tracing is on, the engine writes the trace JSON
  // here on destruction.
  std::string trace_path;

  // Ring-buffer capacity of the activity timeline (points = ticks; older
  // points are dropped but stay counted). Must be >= 1.
  size_t timeline_capacity = 512;

  // How Run treats disorder and malformed events (see runtime/ingest.h):
  // kStrict rejects the batch with a Status, kDrop/kReorder degrade
  // gracefully and quarantine what cannot be processed.
  IngestPolicy ingest_policy = IngestPolicy::kStrict;

  // Maximum admissible lateness in ticks under kReorder (>= 0). Events
  // later than this are dropped and quarantined.
  Timestamp reorder_slack = 0;

  // How many quarantined events the dead-letter sink retains in full
  // (counters stay exact past this bound).
  size_t quarantine_capacity = 1024;

  // Static model analysis during the model-based Create (see AnalysisMode).
  AnalysisMode analysis = AnalysisMode::kOff;

  // Pattern-matcher implementation (see PatternEngine). Patterns the
  // compiler does not support (width beyond kMaxCompiledPositions) keep
  // the interpreted operator under kCompiled/kAuto; the analyzer notes the
  // fallback as P305.
  PatternEngine pattern_engine = PatternEngine::kInterpreted;

  // Abstract-interpretation pass over the patterns the compiler handles
  // (analysis/absint.h): prunes guards proven implied, short-circuits
  // automata proven dead, and refines guard-ordering selectivities from
  // interval facts. On by default; off compiles exactly as a build without
  // the pass (byte-identical automata and output). No effect under
  // kInterpreted.
  bool absint = true;

  // Durability (durability/durability.h): off by default; kWal logs every
  // admitted tick to a write-ahead log so a crashed engine can be rebuilt
  // with Engine::Recover; kWalCheckpoint additionally writes periodic full
  // state checkpoints that bound replay time and let the log be truncated.
  // The durability contract: a Run call that returned OK is durable — a
  // recovered engine resumes exactly after it; a Run that failed or was
  // interrupted is not, and its input must be re-submitted.
  DurabilityOptions durability;

  // Checks option invariants (num_threads >= 1, reorder_slack >= 0, accel
  // and seconds_per_tick positive, gc_interval >= 1, gc_horizon >= 0,
  // timeline_capacity >= 1, durability options consistent).
  // Returned (not aborted) so callers can surface configuration errors;
  // Engine::Create is the validating construction path.
  Status Validate() const;
};

// Aggregate results of one Run.
struct RunStats {
  // EngineOptions::tenant of the engine that produced this Run (empty for
  // library use).
  std::string tenant;

  int64_t input_events = 0;
  int64_t derived_events = 0;
  // Derived event counts by type name.
  std::map<std::string, int64_t> derived_by_type;

  // Latency (simulated seconds; see header comment).
  double max_latency = 0.0;
  double mean_latency = 0.0;

  // Total measured processing wall time.
  double cpu_seconds = 0.0;
  // Operator work units (see OpExecContext).
  uint64_t ops_executed = 0;
  // Chain executions skipped entirely because the bottom context window was
  // closed (the benefit of push-down + routing).
  int64_t suspended_chains = 0;
  // Chain executions that did run.
  int64_t executed_chains = 0;
  int64_t transactions = 0;
  int64_t partitions = 0;

  // Worker-pool metrics for this Run (all zero in serial mode): ticks and
  // partition transactions dispatched through the pool, summed per-tick
  // executed-load imbalance (max - min *events* any worker processed —
  // event-weighted so a hot partition registers even when task counts are
  // even), tasks executed by a non-owner worker (stealing mode only), and
  // scheduler time blocked on the per-tick barrier.
  int64_t parallel_ticks = 0;
  int64_t parallel_tasks = 0;
  int64_t shard_imbalance = 0;
  int64_t tasks_stolen = 0;
  double barrier_wait_seconds = 0.0;

  // Degradation counters for this Run (all zero under kStrict, which
  // rejects imperfect input instead of degrading): events admitted out of
  // arrival order and re-sequenced (kReorder), events dropped for
  // lateness, all events diverted to the quarantine sink (late +
  // malformed; dropped_late is a subset), and the largest lateness
  // observed among late arrivals this Run, whatever their fate.
  int64_t events_reordered = 0;
  int64_t events_dropped_late = 0;
  int64_t events_quarantined = 0;
  Timestamp max_observed_lateness = 0;

  // Durability activity of this Run (all zero when durability is off):
  // WAL records and bytes appended, fsync(2) calls issued, and checkpoints
  // published.
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t fsyncs = 0;
  int64_t checkpoints_written = 0;

  std::string ToString() const;
};

// Per-timestamp observer: (time, events derived at this time stamp).
using TickObserver =
    std::function<void(Timestamp, const EventBatch& derived)>;

// The CAESAR engine. Owns per-partition plan instances and context state.
class Engine {
 public:
  // Validating construction: returns InvalidArgument (with the offending
  // option) instead of constructing an engine from bad configuration.
  static Result<std::unique_ptr<Engine>> Create(ExecutablePlan plan,
                                                EngineOptions options);

  // Model-based construction: optionally lints the model first
  // (options.analysis), then translates and builds the engine. Under
  // kStrict, analysis errors reject creation with the first formatted
  // diagnostic; under kWarn (and kStrict without errors) the formatted
  // error/warning diagnostics are retained and surfaced through
  // CollectStatistics().
  static Result<std::unique_ptr<Engine>> Create(
      const CaesarModel& model, const PlanOptions& plan_options,
      EngineOptions options);

  // Crash recovery: rebuilds an engine from the durability artifacts in
  // options.durability.dir — loads the newest valid checkpoint, replays
  // the committed WAL suffix through the normal scheduler path (outputs
  // suppressed, GC replicated), and resumes logging where the log left
  // off. Requires options.durability.mode != kOff; the plan/model and
  // options must match the crashed engine's. Input batches after the last
  // durable Run are not in the log — the caller re-submits them, resuming
  // at durable_batch_seq(). Corrupt or torn artifacts degrade gracefully:
  // the scan truncates/skips them and reports I41x diagnostics through
  // recovery_diagnostics() and CollectStatistics().
  static Result<std::unique_ptr<Engine>> Recover(ExecutablePlan plan,
                                                 EngineOptions options);
  static Result<std::unique_ptr<Engine>> Recover(
      const CaesarModel& model, const PlanOptions& plan_options,
      EngineOptions options);

  // Direct construction for known-good options; aborts if
  // options.Validate() fails (use Create to handle that as a Status).
  Engine(ExecutablePlan plan, EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Processes an input stream to completion and returns run statistics.
  // The input passes through the configured ingest policy first: under
  // kStrict, disorder or a malformed event rejects the whole batch with a
  // descriptive error before any engine state is mutated; under
  // kDrop/kReorder the batch is repaired (see runtime/ingest.h) and the
  // degradation is reported in the returned RunStats. Derived events are
  // appended to `outputs` if non-null (in deterministic order). May be
  // called repeatedly; state — including the reorder high-water mark —
  // carries over.
  Result<RunStats> Run(const EventBatch& input,
                       EventBatch* outputs = nullptr);

  // Optional per-timestamp observer (set before Run).
  void SetTickObserver(TickObserver observer) {
    observer_ = std::move(observer);
  }

  // Number of partitions instantiated so far.
  int num_partitions() const;

  // Context state of a partition (for tests); null if the partition does
  // not exist.
  const ContextBitVector* partition_contexts(uint64_t key) const;

  // Snapshot of gathered per-operator statistics, aggregated across
  // partitions (requires EngineOptions::gather_statistics).
  StatisticsReport CollectStatistics() const;

  // The persistent worker pool; null when num_threads == 1. Exposed for
  // tests and benchmarks (cumulative metrics, worker count).
  const ShardedExecutor* executor() const { return executor_.get(); }

  // The dead-letter sink (late and malformed events with reasons, tagged
  // by partition) and the cumulative ingest counters.
  const QuarantineSink& quarantine() const { return quarantine_; }
  const IngestMetrics& ingest_metrics() const { return ingest_metrics_; }

  // The trace recorder; null unless EngineOptions::tracing. Snapshot or
  // WriteJson between Run calls.
  const TraceRecorder* trace() const { return trace_.get(); }

  // The metrics registry; null unless EngineOptions::metrics >= kEngine.
  const MetricsRegistry* metrics_registry() const { return registry_.get(); }

  // True on an engine built by Recover.
  bool recovered() const { return recovered_; }

  // Sequence number of the last durable (committed) Run batch. One Run =
  // one batch, so a client feeding fixed batches can resume its input at
  // this offset after Recover. 0 when durability is off or nothing has
  // committed yet.
  uint64_t durable_batch_seq() const;

  // Cumulative durability counters (all zero when durability is off).
  DurabilityCounters durability_counters() const;

  // Formatted I41x diagnostics from recovery (empty otherwise).
  const std::vector<std::string>& recovery_diagnostics() const {
    return recovery_diagnostics_;
  }

 private:
  struct PartitionState;
  struct QueryState;

  PartitionState* GetOrCreatePartition(uint64_t key);
  uint64_t PartitionKeyOf(const Event& event);

  // Applies the ingest policy to `input`: on success `*effective` points
  // at the stream to schedule (the input itself, or `admitted`) and the
  // per-Run degradation counters in `stats` are filled in. kStrict errors
  // leave the engine untouched.
  Status IngestBatch(const EventBatch& input, EventBatch* admitted,
                     const EventBatch** effective, RunStats* stats);

  // Classifies a malformed event, or returns false if it is well-formed.
  bool ClassifyMalformed(const Event& event, QuarantineReason* reason) const;

  // Quarantines `event` and maintains the cumulative counters.
  void QuarantineEvent(EventPtr event, QuarantineReason reason);

  // Fills partition_attr_cache_[type_id] from the registry schema.
  void ResolvePartitionAttrs(TypeId type_id);

  // Executes one stream transaction (one partition, one time stamp).
  // `worker` is the metrics shard to record into — the id of the executing
  // worker (0 in serial mode), which keeps the non-atomic histogram shards
  // single-writer under any scheduler mode.
  void ProcessTransaction(PartitionState* partition, Timestamp t,
                          const EventBatch& events, EventBatch* derived,
                          int worker);

  // Runs one query chain (with guards in CI mode) over the pool slice.
  void RunQuery(PartitionState* partition, QueryState* query,
                const EventBatch& pool, Timestamp t, EventBatch* out,
                int worker);

  // Window-transition bookkeeping before a query executes.
  void HandleWindowTransitions(PartitionState* partition, QueryState* query,
                               Timestamp t);

  // --- Durability serialization (scheduler thread only) ---
  // The per-batch commit snapshot: ingest-layer scalars, the quarantine
  // sink, and the virtual clock — everything replay cannot re-derive from
  // the admitted events alone.
  std::string SerializeIngestSnapshot() const;
  Status RestoreIngestSnapshot(std::string_view snapshot);
  // The full checkpoint payload: the commit snapshot plus every
  // partition's context vector, transition bookkeeping, and operator state.
  std::string SerializeState() const;
  Status RestoreState(std::string_view payload);
  // Applies a recovery scan to this freshly constructed engine: restore
  // the checkpoint, replay committed batches, open the log for appending.
  Status FinishRecovery(RecoveryScan scan);

  ExecutablePlan plan_;
  EngineOptions options_;
  TickObserver observer_;

  // Formatted error/warning diagnostics from the model-based Create (empty
  // otherwise); copied into StatisticsReport::analysis_diagnostics.
  std::vector<std::string> analysis_diagnostics_;

  // Partition attribute indices per event type (-1 = attribute absent).
  // Resolved eagerly for every type known at construction so event
  // distribution never mutates it; types registered later resolve lazily,
  // which stays safe because distribution runs only on the scheduler
  // thread, before workers are woken for the tick.
  std::vector<std::vector<int>> partition_attr_cache_;

  std::map<uint64_t, std::unique_ptr<PartitionState>> partitions_;

  // Persistent sharded worker pool: created in the constructor when
  // num_threads > 1 and reused across ticks and Run calls, or borrowed
  // from EngineOptions::shared_executor (one pool, many tenant engines).
  std::shared_ptr<ShardedExecutor> executor_;
  // Scratch: the current tick's partition keys and task weights (event
  // counts), in work order. Members so the hot path reuses their capacity.
  std::vector<uint64_t> shard_scratch_;
  std::vector<uint64_t> weight_scratch_;

  // Ingest state (scheduler thread only). The reorder buffer exists iff
  // the policy is kReorder; the drop high-water mark backs kDrop. Both
  // persist across Run calls.
  std::unique_ptr<ReorderBuffer> reorder_;
  bool drop_any_admitted_ = false;
  Timestamp drop_max_admitted_ = 0;
  QuarantineSink quarantine_;
  IngestMetrics ingest_metrics_;

  // Virtual clock state (persists across Run calls).
  double vclock_completion_ = 0.0;
  Timestamp last_gc_ = 0;

  // Durability (scheduler thread only). The manager is opened lazily by
  // the first Run (so I/O failures surface as a Status, not an abort) or
  // installed by Recover; null when the mode is kOff.
  std::unique_ptr<DurabilityManager> durability_;
  bool replaying_ = false;  // WAL replay re-enters Run; nothing re-logged
  bool recovered_ = false;
  std::vector<std::string> recovery_diagnostics_;
  // Last tick handed to the scheduler loop (checkpoint cadence + header).
  Timestamp last_processed_tick_ = 0;
  bool any_tick_processed_ = false;

  // Observability (all null/empty when metrics == kOff and !tracing).
  // Registry instruments are registered once in the constructor; the raw
  // pointers below are the hot-path handles (stable for the engine's
  // lifetime). Shard index = the worker that executed the transaction.
  std::unique_ptr<MetricsRegistry> registry_;
  ShardedCounter* ctr_transactions_ = nullptr;
  ShardedCounter* ctr_input_events_ = nullptr;
  ShardedCounter* ctr_derived_events_ = nullptr;
  ShardedHistogram* hist_transaction_events_ = nullptr;
  ShardedHistogram* hist_transaction_derived_ = nullptr;
  // Per-operator distributions at MetricsGranularity::kOperator, sharded
  // per worker: op_histograms_[shard] holds one entry per (query, op) row
  // in plan order, written only by the worker whose id the shard index is
  // (single-writer even under work stealing, because the executing worker
  // — not the partition's owner — picks the shard). Keeps the hot-path
  // footprint per worker cache-resident instead of per partition, and the
  // index-wise merge in CollectStatistics is commutative, so the totals
  // depend on neither the thread count nor who executed what.
  struct OperatorHistograms {
    Pow2Histogram input_batch;
    Pow2Histogram output_batch;
    Pow2Histogram work_per_invocation;
  };
  std::vector<std::vector<OperatorHistograms>> op_histograms_;
  TickMetrics tick_metrics_;
  std::unique_ptr<Timeline> timeline_;
  std::unique_ptr<TraceRecorder> trace_;
  // Scratch: per-tick context-vector versions before dispatch.
  std::vector<uint64_t> context_version_scratch_;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_ENGINE_H_
