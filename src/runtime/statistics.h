// Statistics gatherer (the optimization-layer component of Fig. 8).
//
// When enabled, the engine records per-operator runtime statistics —
// invocations, input/output event counts, work units — aggregated across
// all partitions. The observed selectivities and the observed context
// activity calibrate the cost model (optimizer/cost_model.h), closing the
// paper's loop between the statistics gatherer and the optimizer.

#ifndef CAESAR_RUNTIME_STATISTICS_H_
#define CAESAR_RUNTIME_STATISTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "runtime/executor.h"
#include "runtime/ingest.h"

namespace caesar {

// Aggregated runtime statistics of one operator instance position.
struct OperatorStats {
  uint64_t invocations = 0;
  uint64_t input_events = 0;
  uint64_t output_events = 0;
  uint64_t work_units = 0;

  // Observed output/input ratio; falls back to 1.0 with no input.
  double ObservedSelectivity() const {
    return input_events == 0
               ? 1.0
               : static_cast<double>(output_events) /
                     static_cast<double>(input_events);
  }

  // Observed work units per input event.
  double ObservedUnitCost() const {
    return input_events == 0
               ? 0.0
               : static_cast<double>(work_units) /
                     static_cast<double>(input_events);
  }

  void Merge(const OperatorStats& other) {
    invocations += other.invocations;
    input_events += other.input_events;
    output_events += other.output_events;
    work_units += other.work_units;
  }
};

// One row of the engine's statistics report: a (query, operator) position.
struct QueryOperatorStats {
  std::string query;
  int op_index = 0;
  Operator::Kind kind = Operator::Kind::kFilter;
  std::string description;
  OperatorStats stats;
};

// Full statistics snapshot.
struct StatisticsReport {
  std::vector<QueryOperatorStats> operators;
  // Fraction of chain executions that actually ran (vs suspended); the
  // observed counterpart of CostModelParams::context_activity.
  double observed_context_activity = 1.0;

  // Worker-pool snapshot (cumulative over the engine's lifetime);
  // executor_workers == 0 means the engine runs serially.
  int executor_workers = 0;
  ExecutorMetrics executor;

  // Ingest/degradation snapshot (cumulative over the engine's lifetime):
  // the graceful-degradation counters plus the quarantine breakdown by
  // rejection reason and by stream partition.
  IngestMetrics ingest;
  int64_t quarantine_by_reason[kNumQuarantineReasons] = {};
  std::map<uint64_t, int64_t> quarantine_by_partition;

  std::string ToString() const;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_STATISTICS_H_
