// Statistics gatherer (the optimization-layer component of Fig. 8).
//
// When enabled, the engine records per-operator runtime statistics —
// invocations, input/output event counts, work units, and (at
// MetricsGranularity::kOperator) per-invocation power-of-2 histograms —
// aggregated across all partitions. The observed selectivities and the
// observed context activity calibrate the cost model
// (optimizer/cost_model.h), closing the paper's loop between the
// statistics gatherer and the optimizer.

#ifndef CAESAR_RUNTIME_STATISTICS_H_
#define CAESAR_RUNTIME_STATISTICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "durability/durability.h"
#include "runtime/executor.h"
#include "runtime/ingest.h"
#include "runtime/observability.h"

namespace caesar {

// Aggregated runtime statistics of one operator instance position.
struct OperatorStats {
  uint64_t invocations = 0;
  uint64_t input_events = 0;
  uint64_t output_events = 0;
  uint64_t work_units = 0;

  // Per-invocation distributions (recorded at MetricsGranularity::kOperator;
  // empty otherwise). Work units are the deterministic execution-time
  // measure of the cost model — wall clock is recorded at tick level.
  Pow2Histogram input_batch;
  Pow2Histogram output_batch;
  Pow2Histogram work_per_invocation;

  // True once this operator has observed any input. An operator that never
  // ran (e.g. its context never activated) has no observable selectivity or
  // unit cost; callers must not treat it like a measured pass-through.
  bool has_data() const { return input_events > 0; }

  // Observed output/input ratio; nullopt without data (a never-invoked
  // operator is *not* a measured selectivity-1.0 operator).
  std::optional<double> ObservedSelectivity() const {
    if (!has_data()) return std::nullopt;
    return static_cast<double>(output_events) /
           static_cast<double>(input_events);
  }

  // Observed work units per input event; nullopt without data.
  std::optional<double> ObservedUnitCost() const {
    if (!has_data()) return std::nullopt;
    return static_cast<double>(work_units) /
           static_cast<double>(input_events);
  }

  void Merge(const OperatorStats& other) {
    invocations += other.invocations;
    input_events += other.input_events;
    output_events += other.output_events;
    work_units += other.work_units;
    input_batch.Merge(other.input_batch);
    output_batch.Merge(other.output_batch);
    work_per_invocation.Merge(other.work_per_invocation);
  }
};

// One row of the engine's statistics report: a (query, operator) position.
struct QueryOperatorStats {
  std::string query;
  int op_index = 0;
  Operator::Kind kind = Operator::Kind::kFilter;
  std::string description;
  OperatorStats stats;
};

// Full statistics snapshot.
struct StatisticsReport {
  // EngineOptions::tenant of the reporting engine; empty for library use.
  // The JSON exporter emits a "tenant" field and the Prometheus exporter a
  // tenant="..." label on every series only when non-empty, so reports
  // without a tenant stay byte-identical to before the label existed.
  std::string tenant;

  // Granularity the engine recorded at; tick metrics, timeline, and
  // registry snapshots below are meaningful only when != kOff.
  MetricsGranularity granularity = MetricsGranularity::kOff;

  std::vector<QueryOperatorStats> operators;
  // Fraction of chain executions that actually ran (vs suspended); the
  // observed counterpart of CostModelParams::context_activity.
  double observed_context_activity = 1.0;

  // Worker-pool snapshot (cumulative over the engine's lifetime);
  // executor_workers == 0 means the engine runs serially.
  int executor_workers = 0;
  ExecutorMetrics executor;

  // Formatted static-analysis diagnostics from the model-based
  // Engine::Create under AnalysisMode::kWarn/kStrict (errors and warnings;
  // empty otherwise). Deliberately absent from the JSON/Prometheus exports,
  // which carry runtime telemetry only.
  std::vector<std::string> analysis_diagnostics;

  // Ingest/degradation snapshot (cumulative over the engine's lifetime):
  // the graceful-degradation counters plus the quarantine breakdown by
  // rejection reason and by stream partition.
  IngestMetrics ingest;
  int64_t quarantine_by_reason[kNumQuarantineReasons] = {};
  std::map<uint64_t, int64_t> quarantine_by_partition;

  // Quarantine/reorder rates relative to the events offered to ingest
  // (admitted + quarantined); 0 when nothing was offered.
  double quarantine_rate() const;
  double reorder_rate() const;

  // Durability snapshot: the configured mode, the cumulative WAL/checkpoint
  // counters, and — on an engine built by Engine::Recover — the recovery
  // provenance. ToString and the JSON/Prometheus exporters emit the block
  // only when the mode != off, so durability-off reports stay byte-for-byte
  // what they were before durability existed.
  DurabilityMode durability_mode = DurabilityMode::kOff;
  DurabilityCounters durability;
  bool recovered = false;
  // Formatted I41x recovery diagnostics (torn WAL tail, corrupt artifacts);
  // a lossy restart is reported here, never silent.
  std::vector<std::string> recovery_diagnostics;

  // Scheduler telemetry (MetricsGranularity >= kEngine).
  TickMetrics ticks;

  // Activity-over-time ring buffer snapshot (oldest first) and how many
  // older points the bounded buffer already dropped.
  std::vector<TimelinePoint> timeline;
  int64_t timeline_dropped = 0;

  // Registry snapshots (per-worker sharded counters/histograms), name-sorted.
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  std::string ToString() const;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_STATISTICS_H_
