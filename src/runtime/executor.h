// Persistent partition-sharded worker pool (the parallel half of the
// paper's Fig. 8 runtime).
//
// The engine's scheduler processes one *tick* (all stream transactions of
// one application time stamp) at a time. In parallel mode it dispatches the
// tick's per-partition transactions to this pool instead of running them
// inline. Three properties make the pool safe and deterministic:
//
//  - *Per-worker task lists*: the scheduler lays the tick's tasks out into
//    one list per worker (task i goes to worker `shards[i] % num_workers`)
//    once, before waking anyone. Workers walk their own list instead of
//    rescanning the whole shards array, so a tick costs O(count) total
//    rather than O(count x workers).
//  - *Partition-exclusive execution*: a task is one whole partition's
//    transaction, and exactly one worker executes it per tick. Under
//    SchedulerMode::kPinned that worker is always the list owner, so a
//    partition sees the same thread on every tick. Under kStealing an idle
//    worker may claim tasks from a loaded victim's list tail (claim flags
//    make execution exactly-once), so the thread varies — but within a
//    tick the partition is still touched by exactly one worker, and the
//    epoch mutex orders tick N's writes before tick N+1's reads. Either
//    way, per-partition state needs no locking.
//  - *Barrier per tick*: ExecuteTick blocks the scheduler until every
//    worker has finished the tick. Workers never see two ticks at once,
//    and the scheduler's pre-tick writes (task lists, claim flags,
//    partition creation) happen-before all worker reads via the epoch
//    mutex.
//
// Workers are created once (constructor) and live until destruction —
// per-tick thread spawn/join cost is gone. Determinism of the *merge* is
// the engine's job: it lays tasks out in partition-key order and
// concatenates their output batches in that same order, so thread
// interleaving never reaches the derived stream regardless of which worker
// executed what.

#ifndef CAESAR_RUNTIME_EXECUTOR_H_
#define CAESAR_RUNTIME_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "runtime/observability.h"

namespace caesar {

// How the pool maps tasks to workers.
enum class SchedulerMode : int8_t {
  // Static `key % num_workers` pinning: a partition is executed by the
  // same worker on every tick. No claim-flag traffic, but a skewed
  // partition-key distribution leaves the hot worker saturated while the
  // rest idle at the barrier.
  kPinned = 0,
  // Work stealing: workers drain their own list first (front to back),
  // then claim tasks from the tails of loaded victims' lists. Skew-
  // resilient; derived output and deterministic exports stay byte-
  // identical because the merge order and the metric totals never depend
  // on which worker executed a task.
  kStealing,
};

const char* SchedulerModeName(SchedulerMode mode);
// Parses "pinned" / "stealing"; false on anything else.
bool ParseSchedulerMode(const std::string& name, SchedulerMode* out);
// The EngineOptions default: kPinned, unless the CAESAR_SCHEDULER
// environment variable names a mode (the CI stealing leg runs the whole
// suite with CAESAR_SCHEDULER=stealing). Read once per process.
SchedulerMode DefaultSchedulerMode();

// Cumulative pool counters, readable between ticks (never during one).
struct ExecutorMetrics {
  // Ticks dispatched through the pool (including empty ones).
  uint64_t ticks = 0;
  // Tasks (partition transactions) dispatched over all ticks.
  uint64_t tasks = 0;
  // Distribution of tasks per tick (count == ticks); deterministic, unlike
  // barrier_wait.
  Pow2Histogram tasks_per_tick;
  // Executed-load imbalance: sum over ticks of (max - min) load *executed*
  // by any worker, in the caller's weight units (the engine passes each
  // transaction's event count; without weights every task counts 1). 0 =
  // perfectly even. Under kPinned this equals the assignment imbalance of
  // the partition-key distribution (deterministic — the skew-bench gate
  // signal); under kStealing it shows the balance stealing actually
  // achieved.
  uint64_t imbalance = 0;
  // The same per-tick (max - min) as a distribution (count == ticks), so
  // skew is readable independently of the run length — the cumulative
  // counter conflates "long balanced run" with "short pathological run".
  Pow2Histogram imbalance_per_tick;
  // Tasks executed by a worker other than their list owner (always 0 under
  // kPinned). Timing-dependent, like barrier_wait.
  uint64_t steals = 0;
  // Scheduler time blocked on the per-tick barrier (count = ticks, max =
  // slowest tick). Includes the workers' useful work; the interesting
  // signal is its distribution relative to per-tick cost.
  RunningStats barrier_wait;
};

// Fixed-size pool of long-lived workers executing sharded ticks.
class ShardedExecutor {
 public:
  // Runs task `index`; `worker` is the id (0..num_workers-1) of the worker
  // executing it — under kStealing not necessarily the list owner. Callers
  // recording into per-worker metric shards must key them by `worker` so
  // every shard stays single-writer within a tick.
  using TickTask = std::function<void(size_t index, int worker)>;

  // Spawns `num_workers` (>= 1) threads immediately.
  explicit ShardedExecutor(int num_workers,
                           SchedulerMode mode = SchedulerMode::kPinned);

  // Wakes and joins all workers. Must not race with ExecuteTick.
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  int num_workers() const { return num_workers_; }
  SchedulerMode mode() const { return mode_; }

  // Runs tasks 0..count-1; task i is assigned to worker `shards[i] %
  // num_workers()` (shards may be null iff count == 0) and executed by that
  // worker (kPinned) or by any worker (kStealing), exactly once either
  // way. Blocks until every worker has finished the tick. Call from one
  // scheduler thread only; the task callable must be safe to invoke
  // concurrently for different i.
  //
  // `weights` (optional, same length as shards) is task i's load in
  // arbitrary units, feeding the imbalance metrics; null weighs every task
  // 1. Task-count imbalance is blind to work skew at the engine level —
  // one partition is one task, so a hot partition's extra events never
  // show up — hence the engine passes per-transaction event counts.
  void ExecuteTick(size_t count, const uint64_t* shards,
                   const TickTask& task) {
    ExecuteTick(count, shards, nullptr, task);
  }
  void ExecuteTick(size_t count, const uint64_t* shards,
                   const uint64_t* weights, const TickTask& task);

  // Snapshot of the cumulative counters (call between ticks).
  const ExecutorMetrics& metrics() const { return metrics_; }

 private:
  // Per-worker tick state. The task list is written by the scheduler
  // before the epoch is published; `executed` is written only by the
  // owning worker during the tick and read by the scheduler after the
  // barrier (both orderings via mu_). Padded so neighbouring workers'
  // counters never share a cache line.
  struct alignas(64) WorkerQueue {
    std::vector<uint32_t> tasks;  // task indices, in scheduler order
    uint64_t executed = 0;        // load this worker ran this tick (weighted)
    uint64_t stolen = 0;          // tasks taken from other workers' lists
  };

  void WorkerLoop(int worker_id);
  void RunStealingTick(int self, const TickTask& task,
                       const uint64_t* weights);

  const int num_workers_;
  const SchedulerMode mode_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a new epoch is posted"
  std::condition_variable done_cv_;  // scheduler: "all workers finished"
  uint64_t epoch_ CAESAR_GUARDED_BY(mu_) = 0;  // bumped once per tick
  int pending_ CAESAR_GUARDED_BY(mu_) = 0;  // workers still inside the epoch
  bool shutdown_ CAESAR_GUARDED_BY(mu_) = false;

  // The posted tick, published under mu_ and stable until the barrier.
  // Workers copy the pointers while holding mu_ in their epoch wait and
  // use the copies for the rest of the tick (the scheduler blocks at the
  // barrier, so the pointees outlive every copy).
  size_t task_count_ CAESAR_GUARDED_BY(mu_) = 0;
  const TickTask* task_fn_ CAESAR_GUARDED_BY(mu_) = nullptr;
  // Null = every task weighs 1.
  const uint64_t* task_weights_ CAESAR_GUARDED_BY(mu_) = nullptr;

  // Per-worker task lists, rebuilt (buffers reused) every tick by the
  // scheduler — no per-tick allocation on the hot path. Deliberately NOT
  // guarded_by(mu_): the epoch-barrier protocol (scheduler writes before
  // publishing the epoch, workers write disjoint entries during the tick,
  // scheduler reads after the barrier) is outside what the static
  // analysis can model, and taking mu_ per task would serialize the pool.
  std::vector<WorkerQueue> queues_;
  // kStealing only: one claim flag per task, reset by the scheduler before
  // the epoch is published. exchange(1) decides the unique executor of a
  // task. Grown geometrically, never shrunk.
  std::unique_ptr<std::atomic<uint8_t>[]> claimed_;
  size_t claimed_capacity_ = 0;

  ExecutorMetrics metrics_;
  std::vector<std::thread> workers_;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_EXECUTOR_H_
