// Persistent partition-sharded worker pool (the parallel half of the
// paper's Fig. 8 runtime).
//
// The engine's scheduler processes one *tick* (all stream transactions of
// one application time stamp) at a time. In parallel mode it dispatches the
// tick's per-partition transactions to this pool instead of running them
// inline. Two properties make the pool safe and deterministic:
//
//  - *Sharded ownership*: task i of a tick carries a shard key (the engine
//    passes the partition key), and worker `key % num_workers` is the only
//    worker that ever executes it. A partition is therefore touched by the
//    same worker on every tick and across Run calls, so per-partition state
//    needs no locking — ownership is the synchronization.
//  - *Barrier per tick*: ExecuteTick blocks the scheduler until every
//    worker has finished its shard of the tick. Workers never see two ticks
//    at once, and the scheduler's pre-tick writes (work lists, partition
//    creation) happen-before all worker reads via the epoch mutex.
//
// Workers are created once (constructor) and live until destruction —
// per-tick thread spawn/join cost is gone. Determinism of the *merge* is
// the engine's job: it lays tasks out in partition-key order and
// concatenates their output batches in that same order, so thread
// interleaving never reaches the derived stream.

#ifndef CAESAR_RUNTIME_EXECUTOR_H_
#define CAESAR_RUNTIME_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "runtime/observability.h"

namespace caesar {

// Cumulative pool counters, readable between ticks (never during one).
struct ExecutorMetrics {
  // Ticks dispatched through the pool (including empty ones).
  uint64_t ticks = 0;
  // Tasks (partition transactions) dispatched over all ticks.
  uint64_t tasks = 0;
  // Distribution of tasks per tick (count == ticks); deterministic, unlike
  // barrier_wait.
  Pow2Histogram tasks_per_tick;
  // Shard imbalance: sum over ticks of (max - min) tasks assigned to any
  // worker. 0 = perfectly even; large values mean the partition-key
  // distribution starves some workers.
  uint64_t imbalance = 0;
  // Scheduler time blocked on the per-tick barrier (count = ticks, max =
  // slowest tick). Includes the workers' useful work; the interesting
  // signal is its distribution relative to per-tick cost.
  RunningStats barrier_wait;
};

// Fixed-size pool of long-lived workers executing sharded ticks.
class ShardedExecutor {
 public:
  // Spawns `num_workers` (>= 1) threads immediately.
  explicit ShardedExecutor(int num_workers);

  // Wakes and joins all workers. Must not race with ExecuteTick.
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  int num_workers() const { return num_workers_; }

  // Runs tasks 0..count-1; task i executes on worker `shards[i] %
  // num_workers()` (shards may be null iff count == 0). Blocks until every
  // worker has finished the tick. Call from one scheduler thread only; the
  // task callable must be safe to invoke concurrently for different i.
  void ExecuteTick(size_t count, const uint64_t* shards,
                   const std::function<void(size_t)>& task);

  // Snapshot of the cumulative counters (call between ticks).
  const ExecutorMetrics& metrics() const { return metrics_; }

 private:
  void WorkerLoop(int worker_id);

  const int num_workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a new epoch is posted"
  std::condition_variable done_cv_;  // scheduler: "all workers finished"
  uint64_t epoch_ = 0;               // bumped once per tick
  int pending_ = 0;                  // workers still inside the epoch
  bool shutdown_ = false;

  // The posted tick, published under mu_ and stable until the barrier.
  size_t task_count_ = 0;
  const uint64_t* task_shards_ = nullptr;
  const std::function<void(size_t)>* task_fn_ = nullptr;

  ExecutorMetrics metrics_;
  std::vector<std::thread> workers_;
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_EXECUTOR_H_
