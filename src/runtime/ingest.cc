#include "runtime/ingest.h"

#include <algorithm>

#include "durability/serde.h"

namespace caesar {

const char* IngestPolicyName(IngestPolicy policy) {
  switch (policy) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kDrop:
      return "drop";
    case IngestPolicy::kReorder:
      return "reorder";
  }
  return "?";
}

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kOutOfOrder:
      return "out_of_order";
    case QuarantineReason::kLateBeyondSlack:
      return "late_beyond_slack";
    case QuarantineReason::kUnknownType:
      return "unknown_type";
    case QuarantineReason::kNegativeTime:
      return "negative_time";
    case QuarantineReason::kInvertedInterval:
      return "inverted_interval";
  }
  return "?";
}

DiagCode QuarantineDiagCode(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kOutOfOrder:
      return DiagCode::kI401OutOfOrder;
    case QuarantineReason::kLateBeyondSlack:
      return DiagCode::kI402LateBeyondSlack;
    case QuarantineReason::kUnknownType:
      return DiagCode::kI403UnknownType;
    case QuarantineReason::kNegativeTime:
      return DiagCode::kI404NegativeTime;
    case QuarantineReason::kInvertedInterval:
      return DiagCode::kI405InvertedInterval;
  }
  return DiagCode::kI401OutOfOrder;
}

void QuarantineSink::Add(EventPtr event, QuarantineReason reason,
                         uint64_t partition_key) {
  ++total_;
  ++counts_[static_cast<int>(reason)];
  ++by_partition_[partition_key];
  if (entries_.size() < capacity_) {
    entries_.push_back({std::move(event), reason, partition_key});
  }
}

void QuarantineSink::Save(StateWriter* w) const {
  w->I64(total_);
  w->U32(kNumQuarantineReasons);
  for (int64_t c : counts_) w->I64(c);
  w->U32(static_cast<uint32_t>(entries_.size()));
  for (const QuarantineEntry& e : entries_) {
    WriteEvent(w, *e.event);
    w->U8(static_cast<uint8_t>(e.reason));
    w->U64(e.partition_key);
  }
  w->U32(static_cast<uint32_t>(by_partition_.size()));
  for (const auto& [key, count] : by_partition_) {
    w->U64(key);
    w->I64(count);
  }
}

Status QuarantineSink::Load(StateReader* r) {
  total_ = r->I64();
  if (r->U32() != kNumQuarantineReasons || !r->ok()) {
    return Status::DataLoss("quarantine reason set does not match");
  }
  for (int64_t& c : counts_) c = r->I64();
  uint32_t n_entries = r->U32();
  entries_.clear();
  for (uint32_t i = 0; r->ok() && i < n_entries; ++i) {
    EventPtr event = ReadEvent(r);
    uint8_t reason = r->U8();
    uint64_t key = r->U64();
    if (!r->ok() || event == nullptr || reason >= kNumQuarantineReasons) {
      return Status::DataLoss("malformed quarantine entry");
    }
    entries_.push_back(
        {std::move(event), static_cast<QuarantineReason>(reason), key});
  }
  uint32_t n_partitions = r->U32();
  by_partition_.clear();
  for (uint32_t i = 0; r->ok() && i < n_partitions; ++i) {
    uint64_t key = r->U64();
    by_partition_[key] = r->I64();
  }
  return r->ok() ? Status::Ok()
                 : Status::DataLoss("truncated quarantine state");
}

bool ReorderBuffer::Push(EventPtr event, EventBatch* released) {
  Timestamp t = event->time();
  // kNoWatermark before the first admission: nothing is late yet.
  if (t < watermark()) return false;
  if (any_released_ && t < last_released_) return false;
  if (!any_seen_ || t > max_seen_) {
    any_seen_ = true;
    max_seen_ = t;
  }
  heap_.push_back({t, next_seq_++, std::move(event)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  while (!heap_.empty() && heap_.front().time <= watermark()) {
    PopInto(released);
  }
  return true;
}

void ReorderBuffer::Flush(EventBatch* released) {
  while (!heap_.empty()) PopInto(released);
}

void ReorderBuffer::Save(StateWriter* w) const {
  // The engine checkpoints between Run calls, after Flush: only the
  // watermark scalars carry state then.
  w->Bool(any_seen_);
  w->I64(max_seen_);
  w->I64(last_released_);
  w->Bool(any_released_);
  w->U64(next_seq_);
}

Status ReorderBuffer::Load(StateReader* r) {
  any_seen_ = r->Bool();
  max_seen_ = r->I64();
  last_released_ = r->I64();
  any_released_ = r->Bool();
  next_seq_ = r->U64();
  return r->ok() ? Status::Ok()
                 : Status::DataLoss("truncated reorder buffer state");
}

void ReorderBuffer::PopInto(EventBatch* released) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Pending& top = heap_.back();
  last_released_ = top.time;
  any_released_ = true;
  released->push_back(std::move(top.event));
  heap_.pop_back();
}

}  // namespace caesar
