#include "runtime/ingest.h"

#include <algorithm>

namespace caesar {

const char* IngestPolicyName(IngestPolicy policy) {
  switch (policy) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kDrop:
      return "drop";
    case IngestPolicy::kReorder:
      return "reorder";
  }
  return "?";
}

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kOutOfOrder:
      return "out_of_order";
    case QuarantineReason::kLateBeyondSlack:
      return "late_beyond_slack";
    case QuarantineReason::kUnknownType:
      return "unknown_type";
    case QuarantineReason::kNegativeTime:
      return "negative_time";
    case QuarantineReason::kInvertedInterval:
      return "inverted_interval";
  }
  return "?";
}

DiagCode QuarantineDiagCode(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kOutOfOrder:
      return DiagCode::kI401OutOfOrder;
    case QuarantineReason::kLateBeyondSlack:
      return DiagCode::kI402LateBeyondSlack;
    case QuarantineReason::kUnknownType:
      return DiagCode::kI403UnknownType;
    case QuarantineReason::kNegativeTime:
      return DiagCode::kI404NegativeTime;
    case QuarantineReason::kInvertedInterval:
      return DiagCode::kI405InvertedInterval;
  }
  return DiagCode::kI401OutOfOrder;
}

void QuarantineSink::Add(EventPtr event, QuarantineReason reason,
                         uint64_t partition_key) {
  ++total_;
  ++counts_[static_cast<int>(reason)];
  ++by_partition_[partition_key];
  if (entries_.size() < capacity_) {
    entries_.push_back({std::move(event), reason, partition_key});
  }
}

bool ReorderBuffer::Push(EventPtr event, EventBatch* released) {
  Timestamp t = event->time();
  // kNoWatermark before the first admission: nothing is late yet.
  if (t < watermark()) return false;
  if (any_released_ && t < last_released_) return false;
  if (!any_seen_ || t > max_seen_) {
    any_seen_ = true;
    max_seen_ = t;
  }
  heap_.push_back({t, next_seq_++, std::move(event)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  while (!heap_.empty() && heap_.front().time <= watermark()) {
    PopInto(released);
  }
  return true;
}

void ReorderBuffer::Flush(EventBatch* released) {
  while (!heap_.empty()) PopInto(released);
}

void ReorderBuffer::PopInto(EventBatch* released) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Pending& top = heap_.back();
  last_released_ = top.time;
  any_released_ = true;
  released->push_back(std::move(top.event));
  heap_.pop_back();
}

}  // namespace caesar
