#include "runtime/distributor.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace caesar {

EventDistributor::EventDistributor(int num_sources) : queues_(num_sources) {
  CAESAR_CHECK_GT(num_sources, 0);
}

Status EventDistributor::Push(int source, EventPtr event) {
  if (source < 0 || source >= num_sources()) {
    return Status::InvalidArgument("unknown source " + std::to_string(source));
  }
  SourceQueue& queue = queues_[source];
  if (queue.closed) {
    return Status::FailedPrecondition("source already closed");
  }
  if (event->time() < queue.progress) {
    return Status::FailedPrecondition(
        "time regression on source " + std::to_string(source) + ": " +
        std::to_string(event->time()) + " after " +
        std::to_string(queue.progress));
  }
  queue.progress = event->time();
  queue.events.push_back(std::move(event));
  return Status::Ok();
}

void EventDistributor::Close(int source) {
  CAESAR_CHECK_GE(source, 0);
  CAESAR_CHECK_LT(source, num_sources());
  queues_[source].closed = true;
}

Timestamp EventDistributor::Watermark() const {
  Timestamp watermark = std::numeric_limits<Timestamp>::max();
  bool any_open = false;
  for (const SourceQueue& queue : queues_) {
    if (queue.closed) continue;
    any_open = true;
    watermark = std::min(watermark, queue.progress);
  }
  if (!any_open) return std::numeric_limits<Timestamp>::max();
  return watermark;
}

size_t EventDistributor::ReleaseUpTo(Timestamp bound, EventBatch* out) {
  // K-way merge of queue fronts up to `bound` (stable by source index).
  size_t released = 0;
  while (true) {
    int best = -1;
    Timestamp best_time = 0;
    for (int s = 0; s < num_sources(); ++s) {
      const SourceQueue& queue = queues_[s];
      if (queue.events.empty()) continue;
      Timestamp t = queue.events.front()->time();
      if (t > bound) continue;
      if (best < 0 || t < best_time) {
        best = s;
        best_time = t;
      }
    }
    if (best < 0) break;
    out->push_back(std::move(queues_[best].events.front()));
    queues_[best].events.pop_front();
    ++released;
  }
  return released;
}

size_t EventDistributor::Release(EventBatch* out) {
  Timestamp watermark = Watermark();
  if (watermark == kNoProgress) return 0;
  return ReleaseUpTo(watermark, out);
}

size_t EventDistributor::ReleaseAll(EventBatch* out) {
  return ReleaseUpTo(std::numeric_limits<Timestamp>::max(), out);
}

size_t EventDistributor::buffered() const {
  size_t total = 0;
  for (const SourceQueue& queue : queues_) total += queue.events.size();
  return total;
}

StreamingEngine::StreamingEngine(std::unique_ptr<Engine> engine,
                                 int num_sources)
    : engine_(std::move(engine)), distributor_(num_sources) {
  CAESAR_CHECK(engine_ != nullptr);
}

Status StreamingEngine::Push(int source, EventPtr event) {
  return distributor_.Push(source, std::move(event));
}

Result<RunStats> StreamingEngine::Advance(EventBatch* outputs) {
  EventBatch released;
  distributor_.Release(&released);
  return engine_->Run(released, outputs);
}

Result<RunStats> StreamingEngine::Flush(EventBatch* outputs) {
  for (int s = 0; s < distributor_.num_sources(); ++s) {
    distributor_.Close(s);
  }
  EventBatch released;
  distributor_.ReleaseAll(&released);
  return engine_->Run(released, outputs);
}

}  // namespace caesar
