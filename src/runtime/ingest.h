// Graceful-degradation ingestion: the layer between an imperfect event feed
// and the engine's strictly time-ordered scheduler.
//
// The paper's runtime assumes a perfect feed (time-ordered, well-formed
// events); production traffic is late, duplicated, and malformed. The
// engine therefore admits input through an *ingest policy*:
//
//  - kStrict  — the paper's contract: any disorder or malformed event makes
//    Run return a descriptive error Status before any state is mutated.
//  - kDrop    — events older than the newest admitted time stamp are
//    deterministically dropped and quarantined (reason kOutOfOrder).
//  - kReorder — a bounded, watermark-driven reorder buffer re-sequences
//    events late by at most `reorder_slack` ticks; events later than that
//    are dropped and quarantined (reason kLateBeyondSlack).
//
// Watermark semantics (kReorder): after admitting an event at time t the
// buffer's high-water mark is max_seen = max over admitted times, and the
// watermark is max_seen - slack. Buffered events with time() <= watermark
// can never be preceded by a future admissible event (every future event
// has time() >= its own watermark >= the current one), so they are released
// in (time, arrival) order. The released stream is therefore non-decreasing
// in time, and an input whose lateness never exceeds the slack is restored
// to its exact pre-disorder sequence (equal-time events keep arrival
// order). Run drains the buffer at end of batch; the high-water mark and
// the last released time persist across Run calls, so an event older than
// anything already emitted is late no matter when it arrives.
//
// Malformed events (unknown type id, negative occurrence time, inverted
// occurrence interval) never reach the scheduler under kDrop/kReorder;
// they are diverted to a bounded per-partition *quarantine* (dead-letter)
// sink together with their rejection reason. Counters are exact even when
// the sink's event storage is full; see QuarantineSink.

#ifndef CAESAR_RUNTIME_INGEST_H_
#define CAESAR_RUNTIME_INGEST_H_

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "event/event.h"

namespace caesar {

class StateWriter;
class StateReader;

// How Engine::Run treats disorder and malformed events in its input.
enum class IngestPolicy : int8_t {
  kStrict = 0,  // reject the batch with a Status (no state mutated)
  kDrop,        // drop events older than the newest admitted time stamp
  kReorder,     // re-sequence within `reorder_slack`, drop the rest
};

// Human-readable policy name ("strict", "drop", "reorder").
const char* IngestPolicyName(IngestPolicy policy);

// Why an event was quarantined instead of processed.
enum class QuarantineReason : int8_t {
  kOutOfOrder = 0,    // kDrop: older than the newest admitted time stamp
  kLateBeyondSlack,   // kReorder: late by more than the slack
  kUnknownType,       // type id not present in the registry
  kNegativeTime,      // occurrence time before the epoch (time() < 0)
  kInvertedInterval,  // complex event with end_time() < start_time()
};

inline constexpr int kNumQuarantineReasons = 5;

// Human-readable reason name ("out_of_order", "late_beyond_slack", ...).
// The names are part of the metrics-export schema; diagnostics instead
// carry the stable I4xx code below, so the two vocabularies can evolve
// independently of the golden files.
const char* QuarantineReasonName(QuarantineReason reason);

// The diagnostic code (analysis/diagnostics.h, I4xx family) for a
// quarantine reason — the shared vocabulary between ingest telemetry,
// reader errors, and caesar_lint.
DiagCode QuarantineDiagCode(QuarantineReason reason);

// One dead-lettered event with its rejection reason and the partition it
// would have been routed to (0 when the partition cannot be determined,
// e.g. for an unknown type).
struct QuarantineEntry {
  EventPtr event;
  QuarantineReason reason = QuarantineReason::kOutOfOrder;
  uint64_t partition_key = 0;
};

// Bounded dead-letter sink. Stores up to `capacity` full entries (the
// head of the quarantine stream, for inspection and replay); counters per
// reason and per partition stay exact past the capacity.
class QuarantineSink {
 public:
  explicit QuarantineSink(size_t capacity) : capacity_(capacity) {}

  void Add(EventPtr event, QuarantineReason reason, uint64_t partition_key);

  // Total events quarantined (retained or not).
  int64_t total() const { return total_; }
  int64_t count(QuarantineReason reason) const {
    return counts_[static_cast<int>(reason)];
  }
  // Events counted but not retained because the sink was full.
  int64_t overflow() const {
    return total_ - static_cast<int64_t>(entries_.size());
  }

  // The retained entries, in quarantine order (at most `capacity`).
  const std::vector<QuarantineEntry>& entries() const { return entries_; }
  // Exact per-partition quarantine counts (deterministic iteration order).
  const std::map<uint64_t, int64_t>& by_partition() const {
    return by_partition_;
  }

  // Checkpoint serialization (durability/serde.h); capacity is
  // configuration and not persisted.
  void Save(StateWriter* w) const;
  Status Load(StateReader* r);

 private:
  size_t capacity_;
  int64_t total_ = 0;
  int64_t counts_[kNumQuarantineReasons] = {};
  std::vector<QuarantineEntry> entries_;
  std::map<uint64_t, int64_t> by_partition_;
};

// Bounded, watermark-driven reorder buffer (see file comment for the
// semantics). Single-threaded: the engine calls it from the scheduler
// thread only, before any worker dispatch.
class ReorderBuffer {
 public:
  // `slack` is the maximum admissible lateness in ticks (>= 0).
  explicit ReorderBuffer(Timestamp slack) : slack_(slack) {}

  // Admits `event` unless it is late beyond the slack or older than an
  // already released event (returns false; nothing is released). On
  // admission, appends every event that became releasable to `released`
  // in (time, arrival) order.
  bool Push(EventPtr event, EventBatch* released);

  // Releases everything still buffered, in order (end of batch/stream).
  void Flush(EventBatch* released);

  // Highest admitted time stamp; meaningful once any_seen().
  Timestamp max_seen() const { return max_seen_; }
  bool any_seen() const { return any_seen_; }

  // watermark() before any admission: no cut-off exists yet, so nothing is
  // late. The sentinel compares below every valid time stamp (including 0)
  // instead of the garbage `0 - slack_` the naive formula would yield.
  static constexpr Timestamp kNoWatermark =
      std::numeric_limits<Timestamp>::min();

  // Admission cut-off: events with time() < watermark are late beyond the
  // slack; kNoWatermark until the first admission.
  Timestamp watermark() const {
    return any_seen_ ? max_seen_ - slack_ : kNoWatermark;
  }
  Timestamp slack() const { return slack_; }

  size_t buffered() const { return heap_.size(); }

  // Checkpoint serialization (durability/serde.h). Only meaningful between
  // Run calls, when the heap is drained; the watermark scalars are what
  // must survive so a recovered engine rejects the same late events.
  void Save(StateWriter* w) const;
  Status Load(StateReader* r);

 private:
  struct Pending {
    Timestamp time = 0;
    uint64_t seq = 0;  // arrival order, for a stable release among ties
    EventPtr event;
  };
  // Min-heap on (time, seq).
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void PopInto(EventBatch* released);

  const Timestamp slack_;
  bool any_seen_ = false;
  Timestamp max_seen_ = 0;
  // Highest released time: after a Flush it can exceed the watermark, and
  // admission must also respect it (nothing may be emitted out of order).
  Timestamp last_released_ = 0;
  bool any_released_ = false;
  uint64_t next_seq_ = 0;
  std::vector<Pending> heap_;
};

// Cumulative ingest/degradation counters over an engine's lifetime.
struct IngestMetrics {
  int64_t admitted = 0;        // events handed to the scheduler
  int64_t reordered = 0;       // admitted out of arrival order (kReorder)
  int64_t dropped_late = 0;    // quarantined as kOutOfOrder/kLateBeyondSlack
  int64_t quarantined = 0;     // all quarantined events (late + malformed)
  Timestamp max_observed_lateness = 0;  // over all late arrivals, any fate
};

}  // namespace caesar

#endif  // CAESAR_RUNTIME_INGEST_H_
