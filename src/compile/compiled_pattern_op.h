// The automaton-backed pattern operator (EngineOptions::pattern_engine =
// compiled). Semantically identical to algebra/pattern_op.h — the engine
// swaps one for the other behind the Operator interface — but incremental:
//
//  - Runs are bucketed per automaton state and only probed when an event of
//    the state's awaited type arrives (type dispatch), instead of scanning
//    every partial match for every event.
//  - Transition predicates run in the compiler's cost order and
//    short-circuit run creation (lazy evaluation).
//  - Expiry keeps a per-state minimum first_time, so states with no stale
//    runs are skipped entirely (timer wheel degenerate case: one timer per
//    state suffices because WITHIN is a single per-pattern constant).
//
// Determinism contract: the derived event stream is byte-identical to the
// interpreted operator's. The interpreted matcher scans its partials deque
// in append order; this operator tags every run with a monotonically
// increasing sequence number and probes candidate states in a seq-ordered
// merge, then appends new runs in creation order (fresh first, extensions
// in scan order) exactly like the interpreted step 4. Work-unit counts
// (ops_executed) legitimately differ — fewer probes is the point.
//
// Per-state statistics reuse OperatorStats so the calibration skip rule
// applies unchanged: a state that never saw a candidate has no observable
// selectivity (nullopt), it is not a measured always-fails transition.

#ifndef CAESAR_COMPILE_COMPILED_PATTERN_OP_H_
#define CAESAR_COMPILE_COMPILED_PATTERN_OP_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "compile/automaton.h"
#include "runtime/statistics.h"

namespace caesar {

class CompiledPatternOp : public Operator {
 public:
  explicit CompiledPatternOp(
      std::shared_ptr<const CompiledAutomaton> automaton);

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  void Reset() override;
  void ExpireBefore(Timestamp t) override;
  std::string DebugString() const override;
  void SaveState(StateWriter* w) const override;
  Status LoadState(StateReader* r) override;

  // Static estimates match the interpreted operator's: the engine selects
  // the pattern engine after planning, so the two must cost identically or
  // plan shapes would diverge between engines.
  double UnitCost() const override;
  double Selectivity() const override;

  const CompiledAutomaton& automaton() const { return *automaton_; }
  const PatternOpConfig& config() const { return *automaton_->config; }

  // Per-transition observations: input_events = candidate runs probed (for
  // state 0: type-matching events), output_events = advancements. Index =
  // source state.
  const std::vector<OperatorStats>& state_stats() const {
    return state_stats_;
  }
  // Observed advance ratio of `state`; nullopt while the state has never
  // probed a candidate (calibration skip rule — see statistics.h).
  std::optional<double> ObservedStateSelectivity(int state) const;

  // Introspection for tests and the garbage collector.
  size_t num_runs() const;
  size_t negation_buffer_size() const;

 private:
  // A partial match: state s holds runs with the first s positive
  // components bound. Negated slots are bound transiently at completion.
  struct Run {
    std::vector<EventPtr> bound;
    Timestamp first_time = 0;
    Timestamp last_time = -1;
    uint64_t seq = 0;  // global creation order (the determinism contract)
  };

  void ProcessEvent(const EventPtr& event, EventBatch* output,
                    OpExecContext* ctx);
  bool PredicatesPass(const std::vector<EventPtr>& bound_scratch,
                      const AutomatonTransition& transition,
                      OpExecContext* ctx) const;
  bool NegationsPass(Run* run, OpExecContext* ctx);
  void EmitMatch(const Run& run, EventBatch* output) const;
  void StoreRun(int state, Run run);

  std::shared_ptr<const CompiledAutomaton> automaton_;
  // runs_[s] = runs in state s, ascending seq; slots 0 and k are unused
  // (fresh runs are created from the event, accepted runs emit).
  std::vector<std::deque<Run>> runs_;
  // Min first_time per state (expiry skip); max() when the state is empty.
  std::vector<Timestamp> state_min_first_;
  uint64_t seq_counter_ = 0;
  // One time-ordered buffer per NegationWatch.
  std::vector<std::deque<EventPtr>> neg_buffers_;
  std::vector<OperatorStats> state_stats_;
};

}  // namespace caesar

#endif  // CAESAR_COMPILE_COMPILED_PATTERN_OP_H_
