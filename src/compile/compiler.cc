#include "compile/compiler.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/absint.h"
#include "common/logging.h"
#include "optimizer/cost_model.h"
#include "plan/translator.h"
#include "query/model.h"

namespace caesar {

bool CompileSupported(const PatternOpConfig& config) {
  return static_cast<int>(config.positions.size()) <= kMaxCompiledPositions;
}

std::shared_ptr<const CompiledAutomaton> CompilePattern(
    std::shared_ptr<const PatternOpConfig> config,
    const PatternCompileOptions& options) {
  CAESAR_CHECK(CompileSupported(*config))
      << "pattern exceeds kMaxCompiledPositions: " << config->description;
  auto automaton = std::make_shared<CompiledAutomaton>();
  automaton->config = config;
  const auto& positions = config->positions;

  if (config->pass_through) return automaton;

  // Interval facts over the positions (config order). Each guard's verdict
  // is taken against the facts accumulated before it, so pruning is sound
  // by induction: the kept guards imply every pruned one (absint.h).
  PatternAbsintResult facts;
  if (options.absint) {
    std::vector<AbsPosition> abs_positions;
    for (const auto& position : positions) {
      AbsPosition abs;
      abs.negated = position.negated;
      for (const auto& predicate : position.predicates) {
        abs.guards.push_back(AbstractPredicate(*predicate));
      }
      abs_positions.push_back(std::move(abs));
    }
    facts = AnalyzePositions(abs_positions);
  }

  // Positive positions become the transition chain; negated ones become
  // completion-time watches with their interval endpoints precomputed.
  for (int i = 0; i < static_cast<int>(positions.size()); ++i) {
    if (positions[i].negated) {
      NegationWatch watch;
      watch.neg_index = static_cast<int>(automaton->negations.size());
      watch.slot = i;
      watch.type_id = positions[i].type_id;
      for (int p = i - 1; p >= 0; --p) {
        if (!positions[p].negated) {
          watch.prev_positive_slot = p;
          break;
        }
      }
      for (int p = i + 1; p < static_cast<int>(positions.size()); ++p) {
        if (!positions[p].negated) {
          watch.next_positive_slot = p;
          break;
        }
      }
      CAESAR_CHECK_GE(watch.next_positive_slot, 0)
          << "trailing NOT reached the compiler: " << config->description;
      watch.predicates = positions[i].predicates;
      automaton->negations.push_back(std::move(watch));
      continue;
    }
    AutomatonTransition transition;
    transition.slot = i;
    transition.type_id = positions[i].type_id;
    for (size_t p = 0; p < positions[i].predicates.size(); ++p) {
      AutomatonPredicate predicate;
      predicate.expr = positions[i].predicates[p];
      predicate.config_index = static_cast<int>(p);
      predicate.est_cost = EstimatePredicateCost(*predicate.expr);
      predicate.est_selectivity = EstimatePredicateSelectivity(*predicate.expr);
      if (options.absint) {
        const AbsGuardInfo& info = facts.guards[i][p];
        if (info.verdict == AbsVerdict::kTrue) {
          // Implied by guards already evaluated on any run reaching this
          // state: never evaluate it again.
          transition.pruned.push_back(std::move(predicate));
          continue;
        }
        if (info.sat_fraction.has_value()) {
          predicate.est_selectivity =
              RefineSelectivityFromFacts(*info.sat_fraction);
          predicate.absint_refined = true;
        }
      }
      transition.predicates.push_back(std::move(predicate));
    }
    // Lazy evaluation: cheapest expected cost per rejection first. The sort
    // is stable with a config-index tie-break, so the order (and the dump)
    // is deterministic.
    std::stable_sort(transition.predicates.begin(),
                     transition.predicates.end(),
                     [](const AutomatonPredicate& a,
                        const AutomatonPredicate& b) {
                       if (a.rank() != b.rank()) return a.rank() < b.rank();
                       return a.config_index < b.config_index;
                     });
    if (options.absint && facts.dead_position == i) {
      automaton->dead_transition =
          static_cast<int>(automaton->transitions.size());
    }
    automaton->transitions.push_back(std::move(transition));
  }
  CAESAR_CHECK(!automaton->transitions.empty());

  // Type dispatch over the non-initial states.
  for (int s = 1; s < static_cast<int>(automaton->transitions.size()); ++s) {
    const TypeId type = automaton->transitions[s].type_id;
    auto it = std::lower_bound(
        automaton->dispatch.begin(), automaton->dispatch.end(), type,
        [](const auto& entry, TypeId id) { return entry.first < id; });
    if (it == automaton->dispatch.end() || it->first != type) {
      it = automaton->dispatch.insert(it, {type, {}});
    }
    it->second.push_back(s);
  }
  return automaton;
}

Result<std::string> DumpModelAutomatons(
    const CaesarModel& model, const PlanOptions& plan_options,
    const PatternCompileOptions& compile_options) {
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan plan,
                          TranslateModel(model, plan_options));
  std::ostringstream os;
  for (const auto* queries : {&plan.deriving, &plan.processing}) {
    for (const CompiledQuery& query : *queries) {
      for (const auto& op : query.chain.ops) {
        if (op->kind() != Operator::Kind::kPattern) continue;
        const auto* pattern = static_cast<const PatternOp*>(op.get());
        os << "query " << query.name << "\n";
        if (!CompileSupported(pattern->config())) {
          os << "  fallback: interpreted ("
             << pattern->config().positions.size() << " positions > "
             << kMaxCompiledPositions << ")\n";
          continue;
        }
        os << CompilePattern(pattern->shared_config(), compile_options)
                  ->DumpText(*plan.registry);
      }
    }
  }
  return os.str();
}

}  // namespace caesar
