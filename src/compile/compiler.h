// The pattern-to-automaton compiler: PatternOpConfig -> CompiledAutomaton.
//
// Compilation resolves everything the interpreted matcher re-derives per
// event or per match — positive/negated position split, negation intervals,
// per-type state dispatch — and orders each transition's predicate closures
// by the cost model's estimates (see automaton.h). Patterns beyond
// kMaxCompiledPositions fall back to the interpreted operator (the analyzer
// notes this as P305).

#ifndef CAESAR_COMPILE_COMPILER_H_
#define CAESAR_COMPILE_COMPILER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "compile/automaton.h"

namespace caesar {

class CaesarModel;
struct PlanOptions;

// Ceiling on compilable pattern width. Patterns this long do not occur in
// practice (the generator tops out at 4 positions); the bound keeps the
// per-run slot arrays small and gives the P305 fallback note a trigger.
inline constexpr int kMaxCompiledPositions = 16;

// True when `config` can be compiled (position count within the limit).
bool CompileSupported(const PatternOpConfig& config);

// Knobs consulted while compiling one pattern.
struct PatternCompileOptions {
  // Run the abstract interpreter (analysis/absint.h) over the position
  // guards: prune guards proven implied by earlier ones, mark transitions
  // proven impassable, and refine guard selectivities from the derived
  // satisfiable-fraction bounds. Off must be byte-identical to a compiler
  // without the pass (EngineOptions::absint threads through here).
  bool absint = true;
};

// Compiles `config`; aborts if !CompileSupported(config). The automaton
// shares ownership of the config.
std::shared_ptr<const CompiledAutomaton> CompilePattern(
    std::shared_ptr<const PatternOpConfig> config,
    const PatternCompileOptions& options = {});

// Translates `model` and renders the automaton of every pattern operator in
// plan order (deriving queries, then processing), one DumpText block per
// operator prefixed by "query <name>". Unsupported patterns render a
// one-line fallback note instead. Backs `caesar_lint --dump-automaton` and
// the tests/compile_corpus/ goldens.
Result<std::string> DumpModelAutomatons(
    const CaesarModel& model, const PlanOptions& plan_options,
    const PatternCompileOptions& compile_options = {});

}  // namespace caesar

#endif  // CAESAR_COMPILE_COMPILER_H_
