#include "compile/compiled_pattern_op.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "durability/serde.h"

namespace caesar {

namespace {
constexpr Timestamp kNoRuns = std::numeric_limits<Timestamp>::max();
}  // namespace

CompiledPatternOp::CompiledPatternOp(
    std::shared_ptr<const CompiledAutomaton> automaton)
    : Operator(Kind::kCompiledPattern), automaton_(std::move(automaton)) {
  CAESAR_CHECK(automaton_ != nullptr);
  runs_.resize(automaton_->num_states());
  state_min_first_.assign(automaton_->num_states(), kNoRuns);
  neg_buffers_.resize(automaton_->negations.size());
  state_stats_.resize(
      std::max<size_t>(1, automaton_->transitions.size()));
}

void CompiledPatternOp::Process(const EventBatch& input, EventBatch* output,
                                OpExecContext* ctx) {
  const PatternOpConfig& cfg = *automaton_->config;
  // A dead transition makes the accepting state unreachable: the pattern
  // can never emit, so no run is worth creating or advancing. Emitting
  // nothing is exactly what the interpreted matcher would do — its partial
  // matches would all stall on the impassable position.
  if (automaton_->dead_transition >= 0) return;
  if (cfg.pass_through) {
    ctx->CountWork(input.size());
    const auto& position = cfg.positions[0];
    for (const EventPtr& event : input) {
      if (event->type_id() != position.type_id) continue;
      ++state_stats_[0].input_events;
      bool pass = true;
      for (const auto& predicate : position.predicates) {
        ctx->CountWork(1);
        if (!predicate->EvalBool(&event)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        ++state_stats_[0].output_events;
        output->push_back(event);
      }
    }
    return;
  }
  if (!input.empty()) {
    // Expire once per batch (same cadence as the interpreted matcher);
    // advancement re-checks WITHIN per event, so late expiry never admits
    // a stale match.
    ExpireBefore(input.front()->time() - cfg.within);
  }
  for (const EventPtr& event : input) {
    ProcessEvent(event, output, ctx);
  }
}

void CompiledPatternOp::ProcessEvent(const EventPtr& event,
                                     EventBatch* output, OpExecContext* ctx) {
  ctx->CountWork(1);
  const auto& transitions = automaton_->transitions;
  const int accepting = static_cast<int>(transitions.size());

  // 1. Feed negation buffers (time-ordered by construction).
  for (const NegationWatch& watch : automaton_->negations) {
    if (watch.type_id == event->type_id()) {
      neg_buffers_[watch.neg_index].push_back(event);
    }
  }

  // 2. Collect advancements in the interpreted matcher's order: a fresh
  // run first, then existing runs ascending by seq. Nothing is stored or
  // emitted until the scan is over (the interpreted step-4 barrier), so an
  // event never extends a run it just created.
  std::vector<std::pair<int, Run>> created;  // (destination state, run)
  if (transitions[0].type_id == event->type_id()) {
    ++state_stats_[0].input_events;
    Run fresh;
    fresh.bound.resize(automaton_->config->positions.size());
    fresh.bound[transitions[0].slot] = event;
    if (PredicatesPass(fresh.bound, transitions[0], ctx)) {
      fresh.first_time = event->time();
      fresh.last_time = event->time();
      ++state_stats_[0].output_events;
      created.emplace_back(1, std::move(fresh));
    }
  }

  if (const std::vector<int>* states =
          automaton_->StatesAwaiting(event->type_id())) {
    // Seq-ordered merge across the (few) states awaiting this type; each
    // deque is already seq-ascending.
    std::vector<size_t> cursor(states->size(), 0);
    while (true) {
      int pick = -1;
      uint64_t best_seq = 0;
      for (size_t j = 0; j < states->size(); ++j) {
        const std::deque<Run>& dq = runs_[(*states)[j]];
        if (cursor[j] >= dq.size()) continue;
        const uint64_t seq = dq[cursor[j]].seq;
        if (pick < 0 || seq < best_seq) {
          pick = static_cast<int>(j);
          best_seq = seq;
        }
      }
      if (pick < 0) break;
      const int state = (*states)[pick];
      const Run& run = runs_[state][cursor[pick]++];
      ctx->CountWork(1);
      ++state_stats_[state].input_events;
      if (event->time() <= run.last_time) continue;  // strict ordering
      if (event->time() - run.first_time > automaton_->config->within) {
        continue;
      }
      Run extended = run;
      extended.bound[transitions[state].slot] = event;
      if (!PredicatesPass(extended.bound, transitions[state], ctx)) continue;
      extended.last_time = event->time();
      ++state_stats_[state].output_events;
      created.emplace_back(state + 1, std::move(extended));
    }
  }

  // 3. Emit completions, store the rest (creation order = future seq
  // order, matching the interpreted deque append).
  for (auto& [destination, run] : created) {
    if (destination == accepting) {
      if (NegationsPass(&run, ctx)) EmitMatch(run, output);
    } else {
      StoreRun(destination, std::move(run));
    }
  }
}

bool CompiledPatternOp::PredicatesPass(
    const std::vector<EventPtr>& bound_scratch,
    const AutomatonTransition& transition, OpExecContext* ctx) const {
  for (const AutomatonPredicate& predicate : transition.predicates) {
    ctx->CountWork(1);
    if (!predicate.expr->EvalBool(bound_scratch.data())) return false;
  }
  return true;
}

bool CompiledPatternOp::NegationsPass(Run* run, OpExecContext* ctx) {
  for (const NegationWatch& watch : automaton_->negations) {
    const Timestamp next_time =
        run->bound[watch.next_positive_slot]->time();
    Timestamp lo;
    bool lo_closed = false;
    if (watch.prev_positive_slot >= 0) {
      lo = run->bound[watch.prev_positive_slot]->time();  // open
    } else {
      lo = next_time - automaton_->config->within;  // leading NOT: closed
      lo_closed = true;
    }
    const Timestamp hi = next_time;  // open

    for (const EventPtr& candidate : neg_buffers_[watch.neg_index]) {
      ctx->CountWork(1);
      const Timestamp t = candidate->time();
      if (t >= hi) break;  // buffers are time-ordered
      if (lo_closed ? t < lo : t <= lo) continue;
      bool matches = true;
      run->bound[watch.slot] = candidate;
      for (const auto& predicate : watch.predicates) {
        ctx->CountWork(1);
        if (!predicate->EvalBool(run->bound.data())) {
          matches = false;
          break;
        }
      }
      run->bound[watch.slot] = nullptr;
      if (matches) return false;  // a negated event blocks the match
    }
  }
  return true;
}

void CompiledPatternOp::EmitMatch(const Run& run, EventBatch* output) const {
  const auto& transitions = automaton_->transitions;
  std::vector<Value> values;
  const Timestamp start = run.bound[transitions.front().slot]->start_time();
  const Timestamp end = run.bound[transitions.back().slot]->end_time();
  for (const AutomatonTransition& transition : transitions) {
    const EventPtr& component = run.bound[transition.slot];
    values.insert(values.end(), component->values().begin(),
                  component->values().end());
  }
  output->push_back(MakeComplexEvent(automaton_->config->output_type, start,
                                     end, std::move(values)));
}

void CompiledPatternOp::StoreRun(int state, Run run) {
  run.seq = seq_counter_++;
  state_min_first_[state] = std::min(state_min_first_[state], run.first_time);
  runs_[state].push_back(std::move(run));
}

void CompiledPatternOp::Reset() {
  for (auto& dq : runs_) dq.clear();
  std::fill(state_min_first_.begin(), state_min_first_.end(), kNoRuns);
  for (auto& buffer : neg_buffers_) buffer.clear();
  seq_counter_ = 0;
}

void CompiledPatternOp::ExpireBefore(Timestamp t) {
  for (size_t s = 0; s < runs_.size(); ++s) {
    // Per-state timer: skip states whose oldest run is still live.
    if (state_min_first_[s] >= t) continue;
    std::erase_if(runs_[s],
                  [t](const Run& run) { return run.first_time < t; });
    Timestamp min_first = kNoRuns;
    for (const Run& run : runs_[s]) {
      min_first = std::min(min_first, run.first_time);
    }
    state_min_first_[s] = min_first;
  }
  for (auto& buffer : neg_buffers_) {
    while (!buffer.empty() && buffer.front()->time() < t) {
      buffer.pop_front();
    }
  }
}

std::unique_ptr<Operator> CompiledPatternOp::Clone() const {
  return std::make_unique<CompiledPatternOp>(automaton_);
}

std::optional<double> CompiledPatternOp::ObservedStateSelectivity(
    int state) const {
  CAESAR_CHECK_GE(state, 0);
  CAESAR_CHECK_LT(state, static_cast<int>(state_stats_.size()));
  return state_stats_[state].ObservedSelectivity();
}

size_t CompiledPatternOp::num_runs() const {
  size_t total = 0;
  for (const auto& dq : runs_) total += dq.size();
  return total;
}

size_t CompiledPatternOp::negation_buffer_size() const {
  size_t total = 0;
  for (const auto& buffer : neg_buffers_) total += buffer.size();
  return total;
}

std::string CompiledPatternOp::DebugString() const {
  return "CompiledPattern: " + automaton_->config->description;
}

void CompiledPatternOp::SaveState(StateWriter* w) const {
  // Everything the determinism contract depends on is saved verbatim —
  // in particular run seq values and the global counter, so a recovered
  // engine merges probe order exactly like the uninterrupted one.
  // state_min_first_ is derived and recomputed on load; state_stats_ are
  // observability, folded into RunStats at batch end, and start fresh.
  w->U64(seq_counter_);
  w->U32(static_cast<uint32_t>(runs_.size()));
  for (const auto& dq : runs_) {
    w->U32(static_cast<uint32_t>(dq.size()));
    for (const Run& run : dq) {
      w->U32(static_cast<uint32_t>(run.bound.size()));
      for (const EventPtr& event : run.bound) {
        w->Bool(event != nullptr);
        if (event != nullptr) WriteEvent(w, *event);
      }
      w->I64(run.first_time);
      w->I64(run.last_time);
      w->U64(run.seq);
    }
  }
  w->U32(static_cast<uint32_t>(neg_buffers_.size()));
  for (const auto& buffer : neg_buffers_) {
    w->U32(static_cast<uint32_t>(buffer.size()));
    for (const EventPtr& event : buffer) WriteEvent(w, *event);
  }
}

Status CompiledPatternOp::LoadState(StateReader* r) {
  seq_counter_ = r->U64();
  uint32_t n_states = r->U32();
  if (!r->ok() || n_states != runs_.size()) {
    return Status::DataLoss("automaton state set does not match the plan");
  }
  for (size_t s = 0; s < runs_.size(); ++s) {
    runs_[s].clear();
    state_min_first_[s] = kNoRuns;
    uint32_t n_runs = r->U32();
    for (uint32_t i = 0; r->ok() && i < n_runs; ++i) {
      Run run;
      uint32_t n_slots = r->U32();
      if (!r->ok() || n_slots != automaton_->config->positions.size()) {
        return Status::DataLoss("automaton run does not match the plan");
      }
      run.bound.resize(n_slots);
      for (uint32_t slot = 0; r->ok() && slot < n_slots; ++slot) {
        if (!r->Bool()) continue;
        run.bound[slot] = ReadEvent(r);
        if (run.bound[slot] == nullptr) {
          return Status::DataLoss("malformed automaton run event");
        }
      }
      run.first_time = r->I64();
      run.last_time = r->I64();
      run.seq = r->U64();
      state_min_first_[s] = std::min(state_min_first_[s], run.first_time);
      runs_[s].push_back(std::move(run));
    }
  }
  uint32_t n_buffers = r->U32();
  if (!r->ok() || n_buffers != neg_buffers_.size()) {
    return Status::DataLoss("negation buffers do not match the plan");
  }
  for (auto& buffer : neg_buffers_) {
    buffer.clear();
    uint32_t n = r->U32();
    for (uint32_t i = 0; r->ok() && i < n; ++i) {
      EventPtr event = ReadEvent(r);
      if (event == nullptr) {
        return Status::DataLoss("malformed negation buffer event");
      }
      buffer.push_back(std::move(event));
    }
  }
  return r->ok() ? Status::Ok()
                 : Status::DataLoss("truncated automaton state");
}

double CompiledPatternOp::UnitCost() const {
  const PatternOpConfig& cfg = *automaton_->config;
  return cfg.pass_through ? 1.0
                          : 2.0 * static_cast<double>(cfg.positions.size());
}

double CompiledPatternOp::Selectivity() const {
  return automaton_->config->pass_through ? 1.0 : 0.2;
}

}  // namespace caesar
