#include "compile/automaton.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace caesar {

double AutomatonPredicate::rank() const {
  // Expected cost per rejected candidate. Guard the division: a predicate
  // estimated to pass everything still has to run (last).
  const double rejection = 1.0 - est_selectivity;
  if (rejection <= 1e-9) return 1e18;
  return est_cost / rejection;
}

const std::vector<int>* CompiledAutomaton::StatesAwaiting(
    TypeId type_id) const {
  auto it = std::lower_bound(
      dispatch.begin(), dispatch.end(), type_id,
      [](const auto& entry, TypeId id) { return entry.first < id; });
  if (it == dispatch.end() || it->first != type_id) return nullptr;
  return &it->second;
}

namespace {

std::string FmtEstimate(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

std::string TypeName(const TypeRegistry& registry, TypeId id) {
  if (id < 0 || id >= registry.num_types()) return "?";
  return registry.type(id).name;
}

}  // namespace

std::string CompiledAutomaton::DumpText(const TypeRegistry& registry) const {
  const PatternOpConfig& cfg = *config;
  std::ostringstream os;
  os << "automaton " << cfg.description << "\n";
  int positive = 0;
  for (const auto& position : cfg.positions) {
    if (!position.negated) ++positive;
  }
  os << "  positions: " << cfg.positions.size() << " (" << positive
     << " positive, " << cfg.positions.size() - positive << " negated)"
     << "  within: " << cfg.within << "\n";
  os << "  mode: " << (cfg.pass_through ? "pass-through" : "sequence") << "\n";
  if (cfg.pass_through) {
    os << "  match " << TypeName(registry, cfg.positions[0].type_id)
       << " -> emit\n";
    for (size_t p = 0; p < cfg.positions[0].predicates.size(); ++p) {
      os << "    guard #" << p << ": ("
         << cfg.positions[0].predicates[p]->ToString() << ")\n";
    }
    return os.str();
  }
  for (size_t s = 0; s < transitions.size(); ++s) {
    const AutomatonTransition& t = transitions[s];
    os << "  state " << s << " --" << TypeName(registry, t.type_id)
       << "--> state " << s + 1 << "  [slot " << t.slot << "]";
    if (s + 1 == transitions.size()) os << "  accepting";
    os << "\n";
    for (const AutomatonPredicate& predicate : t.predicates) {
      os << "    guard #" << predicate.config_index << ": ("
         << predicate.expr->ToString() << ")  cost="
         << FmtEstimate(predicate.est_cost)
         << " sel=" << FmtEstimate(predicate.est_selectivity)
         << (predicate.absint_refined ? "  (absint)" : "") << "\n";
    }
    for (const AutomatonPredicate& predicate : t.pruned) {
      os << "    pruned #" << predicate.config_index << ": ("
         << predicate.expr->ToString() << ")  [implied by earlier guards]\n";
    }
    if (dead_transition == static_cast<int>(s)) {
      os << "    dead: no event can pass this transition (absint)\n";
    }
  }
  for (const NegationWatch& watch : negations) {
    os << "  negation slot " << watch.slot << " type "
       << TypeName(registry, watch.type_id) << " in ";
    if (watch.prev_positive_slot >= 0) {
      os << "(slot " << watch.prev_positive_slot << ", slot "
         << watch.next_positive_slot << ")";
    } else {
      os << "[slot " << watch.next_positive_slot << " - within, slot "
         << watch.next_positive_slot << ")";
    }
    os << "\n";
    for (const auto& predicate : watch.predicates) {
      os << "    cond: (" << predicate->ToString() << ")\n";
    }
  }
  os << "  output: " << TypeName(registry, cfg.output_type)
     << "  (emit on state " << transitions.size() << ")\n";
  return os.str();
}

}  // namespace caesar
