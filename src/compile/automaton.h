// Compiled pattern automata (the CEA-style representation of a SEQ query).
//
// A SEQ chain with k positive positions compiles to a linear automaton with
// k + 1 states: state s means "the first s positive components are bound".
// Each state except the last carries one transition — the event type it
// awaits plus the predicate closures gating the advance — and negated
// positions become completion-time NegationWatch checks with their
// surrounding positive slots resolved at compile time (the interpreted
// matcher re-derives them per match).
//
// Transition predicates are *cost-ordered*: the compiler ranks each closure
// by estimated evaluation cost over estimated rejection power
// (optimizer/cost_model.h) so cheap, selective guards run first and
// short-circuit state creation — lazy evaluation in the sense of Kolchinsky
// & Schuster's CEP join-ordering work. Reordering conjuncts of one position
// is semantics-preserving (they are pure), so the compiled operator still
// matches the interpreted one byte for byte.
//
// The automaton itself is immutable and shared by all per-partition operator
// clones; runtime state (runs, negation buffers) lives in
// compile/compiled_pattern_op.h.

#ifndef CAESAR_COMPILE_AUTOMATON_H_
#define CAESAR_COMPILE_AUTOMATON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/pattern_op.h"
#include "event/schema.h"
#include "expr/compiled.h"

namespace caesar {

// One predicate closure on a transition, with the compiler's estimates.
struct AutomatonPredicate {
  std::shared_ptr<const CompiledExpr> expr;
  int config_index = 0;       // index in the position's predicate list
  double est_cost = 1.0;      // evaluator nodes (cost_model.h)
  double est_selectivity = 0.5;
  // est_selectivity came from the abstract interpreter's satisfiable
  // fraction (analysis/absint.h) instead of the flat shape heuristic.
  bool absint_refined = false;

  // Evaluation rank: cost paid per unit of expected rejection; lower runs
  // first. A selectivity-1.0 guard never rejects, so it ranks last.
  double rank() const;
};

// The transition out of state `index`: bind an event of `type_id` into
// pattern slot `slot` when every predicate passes.
struct AutomatonTransition {
  int slot = 0;  // index into PatternOpConfig::positions
  TypeId type_id = kInvalidTypeId;
  std::vector<AutomatonPredicate> predicates;  // cost-ordered
  // Guards the abstract interpreter proved implied by the guards already
  // evaluated on any run reaching this state (config order). Never
  // evaluated at runtime; kept for the dump and state_stats accounting.
  std::vector<AutomatonPredicate> pruned;
};

// A negated position, checked when a run completes. The surrounding
// positive slots define the forbidden interval: (prev, next) when an
// earlier positive exists, [next - within, next) for a leading NOT.
struct NegationWatch {
  int neg_index = 0;  // index of this watch (== its buffer index)
  int slot = 0;       // negated position in PatternOpConfig::positions
  TypeId type_id = kInvalidTypeId;
  int prev_positive_slot = -1;  // -1 = leading NOT
  int next_positive_slot = -1;
  // Negation condition, in config order (evaluated with the candidate
  // bound transiently at `slot`).
  std::vector<std::shared_ptr<const CompiledExpr>> predicates;
};

// The compiled form of one PatternOpConfig. Immutable; shared across
// per-partition operator clones like the config itself.
struct CompiledAutomaton {
  std::shared_ptr<const PatternOpConfig> config;
  // One transition per positive position, in sequence order. Empty iff the
  // pattern is a pass-through event match.
  std::vector<AutomatonTransition> transitions;
  std::vector<NegationWatch> negations;
  // Type dispatch: for each awaited event type, the non-initial states
  // (1 .. k-1) whose transition awaits it, ascending. State 0 (fresh run)
  // is dispatched separately by the operator. Sorted by type id.
  std::vector<std::pair<TypeId, std::vector<int>>> dispatch;
  // Transition the abstract interpreter proved impassable (-1 = none).
  // When set, the accepting state is unreachable and the operator emits
  // nothing — it short-circuits event processing entirely.
  int dead_transition = -1;

  int num_states() const { return static_cast<int>(transitions.size()) + 1; }

  // States >= 1 awaiting `type_id`, or nullptr when none do.
  const std::vector<int>* StatesAwaiting(TypeId type_id) const;

  // Deterministic text rendering for golden tests and `--dump-automaton`.
  std::string DumpText(const TypeRegistry& registry) const;
};

}  // namespace caesar

#endif  // CAESAR_COMPILE_AUTOMATON_H_
