// Static semantic analysis of CAESAR models ("caesar-lint").
//
// The analyzer inspects a model *before* plan translation and reports coded
// diagnostics (analysis/diagnostics.h) instead of opaque Status failures:
//
//   - context-graph checks: unreachable contexts (C001), self-loop SWITCH
//     edges (C002), shadowed SWITCH edges (C003), dead queries (C004),
//     unknown context names (C005). Reachability is an activation fixpoint:
//     the default context is active, and a query whose gate set intersects
//     the active set activates its INITIATE/SWITCH target.
//   - expression/type checks against the event schemas: unknown event types
//     (E101), unknown attributes (E102), operand type errors (E103),
//     string-typed predicates (E104), malformed aggregates (E105), DERIVE
//     schema conflicts (E106), structural query defects (E107-E109).
//     Derived event types are resolved to a fixpoint, mirroring the plan
//     translator, so queries may consume each other's outputs in any order.
//   - satisfiability checks: contradictory predicate conjunctions via
//     interval analysis (W201), SEQ patterns whose WITHIN bound is shorter
//     than the strictly-increasing-timestamp minimum (W202), constant
//     predicates via compile-time folding (W205).
//   - optimizer-precondition checks (the analyzer <-> optimizer contract):
//     contexts whose window bounds are not compile-time orderable and thus
//     ineligible for window grouping (W203, a note), inverted window bounds
//     (W204), more contexts than the runtime context vector holds (P301),
//     plan-translator limitations surfaced as coded errors (P302, P303).
//
// The analyzer never mutates the model or its TypeRegistry; the only
// exception is AnalyzerOptions::check_plan, which runs the real plan
// translator (registering derived types) as a final end-to-end check.

#ifndef CAESAR_ANALYSIS_ANALYZER_H_
#define CAESAR_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "query/model.h"

namespace caesar {

struct AnalyzerOptions {
  // Stamped into every diagnostic's `source` field (and thus the rendered
  // "<source>:<line>:<col>:" prefix).
  std::string source_name;

  // Emit note-severity diagnostics (e.g. W203 ungroupable window). Notes
  // never affect "lint clean" verdicts; turning them off just shrinks the
  // report.
  bool include_notes = true;

  // Run the plan translator as a final end-to-end check and report any
  // failure as P304. Registers derived event types into the model's
  // TypeRegistry (the translator's normal side effect); leave off when the
  // registry must stay untouched. Skipped when the analysis already found
  // errors.
  bool check_plan = false;
};

// Analyzes `model` (which should be Normalize()d or NormalizeLenient()ed)
// and returns all diagnostics, deterministically sorted.
std::vector<Diagnostic> AnalyzeModel(const CaesarModel& model,
                                     const AnalyzerOptions& options = {});

// Context-graph subset only (C001-C004): the checks strict ParseModel
// enforces. Unknown context names are skipped here (AnalyzeModel reports
// them as C005). Diagnostics carry no `source`; callers stamp it.
std::vector<Diagnostic> AnalyzeContextGraph(const CaesarModel& model);

}  // namespace caesar

#endif  // CAESAR_ANALYSIS_ANALYZER_H_
