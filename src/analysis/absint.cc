#include "analysis/absint.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "algebra/pattern_op.h"
#include "plan/translator.h"
#include "query/model.h"

namespace caesar {

namespace {

// Edge propagation rounds before truncation. Bounds only ever tighten, so
// stopping early leaves intervals wider than the true fixpoint — a sound
// over-approximation (see the widening note in absint.h).
constexpr int kMaxPropagationRounds = 16;

Interval ThresholdInterval(BinaryOp op, double value) {
  AttrConstraint constraint;
  constraint.op = op;
  constraint.value = value;
  return constraint.ToInterval();
}

// Tightens the upper/lower bound in place; true when the interval changed.
// Infinite source bounds are skipped (they carry no information and would
// only toggle openness flags at infinity).
bool TightenHi(Interval* iv, double hi, bool open) {
  if (!std::isfinite(hi)) return false;
  if (hi < iv->hi || (hi == iv->hi && open && !iv->hi_open)) {
    iv->hi = hi;
    iv->hi_open = open;
    return true;
  }
  return false;
}

bool TightenLo(Interval* iv, double lo, bool open) {
  if (!std::isfinite(lo)) return false;
  if (lo > iv->lo || (lo == iv->lo && open && !iv->lo_open)) {
    iv->lo = lo;
    iv->lo_open = open;
    return true;
  }
  return false;
}

bool IntersectChanged(Interval* iv, const Interval& other) {
  bool changed = TightenLo(iv, other.lo, other.lo_open);
  changed |= TightenHi(iv, other.hi, other.hi_open);
  return changed;
}

// Walks the flattened conjunct rooted at `idx`, appending leaf conjunct
// node indices left to right.
void CollectConjunctNodes(const std::vector<CompiledExpr::Node>& nodes,
                          int idx, std::vector<int>* out) {
  const CompiledExpr::Node& node = nodes[idx];
  if (node.kind == Expr::Kind::kBinary && node.op == BinaryOp::kAnd) {
    CollectConjunctNodes(nodes, node.left, out);
    CollectConjunctNodes(nodes, node.right, out);
    return;
  }
  out->push_back(idx);
}

}  // namespace

const char* AbsVerdictName(AbsVerdict verdict) {
  switch (verdict) {
    case AbsVerdict::kUnknown:
      return "unknown";
    case AbsVerdict::kTrue:
      return "true";
    case AbsVerdict::kFalse:
      return "false";
  }
  return "?";
}

AbsPredicate AbstractPredicate(const CompiledExpr& expr) {
  AbsPredicate pred;
  pred.exact = true;
  const std::vector<CompiledExpr::Node>& nodes = expr.nodes();
  if (nodes.empty()) {
    pred.exact = false;
    return pred;
  }
  std::vector<int> conjuncts;
  CollectConjunctNodes(nodes, static_cast<int>(nodes.size()) - 1, &conjuncts);
  for (int idx : conjuncts) {
    const CompiledExpr::Node& node = nodes[idx];
    // kNe carves a hole out of an interval rather than bounding it; the
    // domain cannot represent that, so it degrades to inexact like any
    // other unconvertible conjunct.
    if (node.kind != Expr::Kind::kBinary || !IsComparison(node.op) ||
        node.op == BinaryOp::kNe) {
      pred.exact = false;
      continue;
    }
    const CompiledExpr::Node& left = nodes[node.left];
    const CompiledExpr::Node& right = nodes[node.right];
    AbsConstraint constraint;
    if (left.kind == Expr::Kind::kAttrRef &&
        right.kind == Expr::Kind::kAttrRef) {
      constraint.kind = AbsConstraint::Kind::kVarVar;
      constraint.var = left.var_index;
      constraint.attr = left.attr_index;
      constraint.op = node.op;
      constraint.rhs_var = right.var_index;
      constraint.rhs_attr = right.attr_index;
    } else if (left.kind == Expr::Kind::kAttrRef &&
               right.kind == Expr::Kind::kConstant &&
               right.constant.is_numeric()) {
      constraint.kind = AbsConstraint::Kind::kThreshold;
      constraint.var = left.var_index;
      constraint.attr = left.attr_index;
      constraint.op = node.op;
      constraint.value = right.constant.ToDouble();
    } else if (right.kind == Expr::Kind::kAttrRef &&
               left.kind == Expr::Kind::kConstant &&
               left.constant.is_numeric()) {
      constraint.kind = AbsConstraint::Kind::kThreshold;
      constraint.var = right.var_index;
      constraint.attr = right.attr_index;
      constraint.op = MirrorComparison(node.op);
      constraint.value = left.constant.ToDouble();
    } else {
      pred.exact = false;
      continue;
    }
    pred.constraints.push_back(constraint);
  }
  return pred;
}

Interval IntervalFacts::Get(int var, int attr) const {
  auto it = intervals_.find({var, attr});
  if (it == intervals_.end()) return Interval();
  return it->second;
}

AbsVerdict IntervalFacts::Check(const AbsConstraint& constraint) const {
  if (constraint.kind == AbsConstraint::Kind::kThreshold) {
    Interval guard = ThresholdInterval(constraint.op, constraint.value);
    Interval facts = Get(constraint.var, constraint.attr);
    if (facts.IsEmpty()) return AbsVerdict::kUnknown;  // unreachable anyway
    if (facts.ContainedIn(guard)) return AbsVerdict::kTrue;
    Interval overlap = facts;
    overlap.IntersectWith(guard);
    if (overlap.IsEmpty()) return AbsVerdict::kFalse;
    return AbsVerdict::kUnknown;
  }

  // Variable-variable comparison `x op y`. The same reference on both
  // sides is an identity comparison, decidable outright.
  if (constraint.var == constraint.rhs_var &&
      constraint.attr == constraint.rhs_attr) {
    switch (constraint.op) {
      case BinaryOp::kEq:
      case BinaryOp::kLe:
      case BinaryOp::kGe:
        return AbsVerdict::kTrue;
      default:
        return AbsVerdict::kFalse;  // x < x / x > x
    }
  }
  Interval x = Get(constraint.var, constraint.attr);
  Interval y = Get(constraint.rhs_var, constraint.rhs_attr);
  if (x.IsEmpty() || y.IsEmpty()) return AbsVerdict::kUnknown;
  // Normalize kGt/kGe to kLt/kLe by swapping operands. The intervals are
  // independent over-approximations, so deciding the comparison over the
  // whole product region X x Y is sound in both directions.
  BinaryOp op = constraint.op;
  if (op == BinaryOp::kGt || op == BinaryOp::kGe) {
    std::swap(x, y);
    op = (op == BinaryOp::kGt) ? BinaryOp::kLt : BinaryOp::kLe;
  }
  if (op == BinaryOp::kLt) {
    if (x.hi < y.lo || (x.hi == y.lo && (x.hi_open || y.lo_open))) {
      return AbsVerdict::kTrue;
    }
    if (x.lo >= y.hi) return AbsVerdict::kFalse;
    return AbsVerdict::kUnknown;
  }
  if (op == BinaryOp::kLe) {
    if (x.hi <= y.lo) return AbsVerdict::kTrue;
    if (x.lo > y.hi || (x.lo == y.hi && (x.lo_open || y.hi_open))) {
      return AbsVerdict::kFalse;
    }
    return AbsVerdict::kUnknown;
  }
  // kEq.
  Interval overlap = x;
  overlap.IntersectWith(y);
  if (overlap.IsEmpty()) return AbsVerdict::kFalse;
  if (x.lo == x.hi && !x.lo_open && !x.hi_open && y.lo == y.hi &&
      !y.lo_open && !y.hi_open && x.lo == y.lo) {
    return AbsVerdict::kTrue;
  }
  return AbsVerdict::kUnknown;
}

AbsVerdict IntervalFacts::Check(const AbsPredicate& pred) const {
  bool all_true = !pred.constraints.empty();
  for (const AbsConstraint& constraint : pred.constraints) {
    AbsVerdict verdict = Check(constraint);
    if (verdict == AbsVerdict::kFalse) return AbsVerdict::kFalse;
    if (verdict != AbsVerdict::kTrue) all_true = false;
  }
  return (all_true && pred.exact) ? AbsVerdict::kTrue : AbsVerdict::kUnknown;
}

void IntervalFacts::Apply(const AbsPredicate& pred) {
  for (const AbsConstraint& constraint : pred.constraints) {
    if (constraint.kind == AbsConstraint::Kind::kThreshold) {
      Interval& iv = intervals_[{constraint.var, constraint.attr}];
      iv.IntersectWith(ThresholdInterval(constraint.op, constraint.value));
      continue;
    }
    if (constraint.var == constraint.rhs_var &&
        constraint.attr == constraint.rhs_attr) {
      continue;  // identity comparison: no inter-attribute information
    }
    edges_.push_back(Edge{constraint.var, constraint.attr, constraint.op,
                          constraint.rhs_var, constraint.rhs_attr});
  }
  Propagate();
}

void IntervalFacts::Propagate() {
  for (int round = 0; round < kMaxPropagationRounds; ++round) {
    bool changed = false;
    for (const Edge& edge : edges_) {
      Interval& x = intervals_[{edge.var, edge.attr}];
      Interval& y = intervals_[{edge.rhs_var, edge.rhs_attr}];
      switch (edge.op) {
        case BinaryOp::kLt:  // x < y: x below y's ceiling, y above x's floor
          changed |= TightenHi(&x, y.hi, true);
          changed |= TightenLo(&y, x.lo, true);
          break;
        case BinaryOp::kLe:
          changed |= TightenHi(&x, y.hi, y.hi_open);
          changed |= TightenLo(&y, x.lo, x.lo_open);
          break;
        case BinaryOp::kGt:
          changed |= TightenLo(&x, y.lo, true);
          changed |= TightenHi(&y, x.hi, true);
          break;
        case BinaryOp::kGe:
          changed |= TightenLo(&x, y.lo, y.lo_open);
          changed |= TightenHi(&y, x.hi, x.hi_open);
          break;
        case BinaryOp::kEq: {
          Interval joined = x;
          joined.IntersectWith(y);
          changed |= IntersectChanged(&x, joined);
          changed |= IntersectChanged(&y, joined);
          break;
        }
        default:
          break;
      }
    }
    if (!changed) break;
  }
  contradiction_ = false;
  for (const auto& [key, iv] : intervals_) {
    if (iv.IsEmpty()) {
      contradiction_ = true;
      break;
    }
  }
}

std::pair<int, int> IntervalFacts::EmptyKey() const {
  for (const auto& [key, iv] : intervals_) {
    if (iv.IsEmpty()) return key;
  }
  return {-1, -1};
}

std::optional<double> IntervalFacts::SatisfiableFraction(
    const AbsPredicate& pred) const {
  // Guard interval per constrained attribute (thresholds only; relational
  // constraints carry no width information).
  std::map<std::pair<int, int>, Interval> guards;
  for (const AbsConstraint& constraint : pred.constraints) {
    if (constraint.kind != AbsConstraint::Kind::kThreshold) continue;
    guards[{constraint.var, constraint.attr}].IntersectWith(
        ThresholdInterval(constraint.op, constraint.value));
  }
  double fraction = 1.0;
  bool any = false;
  for (const auto& [key, guard] : guards) {
    Interval facts = Get(key.first, key.second);
    double width = facts.hi - facts.lo;
    if (!std::isfinite(width) || width <= 0) continue;
    Interval overlap = facts;
    overlap.IntersectWith(guard);
    double kept = overlap.IsEmpty() ? 0.0 : overlap.hi - overlap.lo;
    fraction *= kept / width;
    any = true;
  }
  if (!any) return std::nullopt;
  return std::clamp(fraction, 0.0, 1.0);
}

PatternAbsintResult AnalyzePositions(
    const std::vector<AbsPosition>& positions) {
  PatternAbsintResult result;
  IntervalFacts facts;
  result.states.push_back(facts);
  for (size_t k = 0; k < positions.size(); ++k) {
    const AbsPosition& position = positions[k];
    std::vector<AbsGuardInfo> infos(position.guards.size());
    if (!position.negated) {
      for (size_t g = 0; g < position.guards.size(); ++g) {
        if (result.dead()) break;  // verdicts past a dead transition: moot
        infos[g].verdict = facts.Check(position.guards[g]);
        infos[g].sat_fraction = facts.SatisfiableFraction(position.guards[g]);
        if (infos[g].verdict == AbsVerdict::kFalse) {
          result.dead_position = static_cast<int>(k);
          result.dead_guard = static_cast<int>(g);
          break;
        }
        facts.Apply(position.guards[g]);
      }
      if (!result.dead() && facts.contradiction()) {
        result.dead_position = static_cast<int>(k);
        result.dead_guard = -1;
      }
    }
    result.guards.push_back(std::move(infos));
    result.states.push_back(facts);
  }
  return result;
}

namespace {

std::string FmtDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Renders the facts of one pattern operator. Variables are named by pattern
// slot ("p0", "p1", ...) — the config does not retain source variable
// names — and attributes resolve through each slot's schema.
void DumpConfigFacts(const PatternOpConfig& config,
                     const TypeRegistry& registry, std::ostringstream& os) {
  std::vector<AbsPosition> positions;
  for (const PatternOpConfig::Position& position : config.positions) {
    AbsPosition abs;
    abs.negated = position.negated;
    for (const auto& predicate : position.predicates) {
      abs.guards.push_back(AbstractPredicate(*predicate));
    }
    positions.push_back(std::move(abs));
  }
  PatternAbsintResult result = AnalyzePositions(positions);

  auto attr_name = [&](int var, int attr) {
    std::string name = "p" + std::to_string(var) + ".";
    TypeId type = config.positions[var].type_id;
    const Schema& schema = registry.type(type).schema;
    if (attr >= 0 && attr < schema.num_attributes()) {
      name += schema.attribute(attr).name;
    } else {
      name += "a" + std::to_string(attr);
    }
    return name;
  };

  auto render_state = [&](const IntervalFacts& facts) {
    bool any = false;
    for (const auto& [key, iv] : facts.intervals()) {
      os << "    " << attr_name(key.first, key.second) << " in "
         << iv.ToString() << "\n";
      any = true;
    }
    if (!any) os << "    top\n";
  };

  for (size_t k = 0; k < positions.size(); ++k) {
    const PatternOpConfig::Position& position = config.positions[k];
    os << "  state " << k << "\n";
    render_state(result.states[k]);
    os << "  pos " << k << " ("
       << registry.type(position.type_id).name
       << (position.negated ? ", negated" : "") << ")\n";
    for (size_t g = 0; g < position.predicates.size(); ++g) {
      const AbsGuardInfo& info = result.guards[k][g];
      os << "    guard #" << g << ": ("
         << position.predicates[g]->ToString()
         << ")  verdict=" << AbsVerdictName(info.verdict);
      if (info.sat_fraction.has_value()) {
        os << "  sat=" << FmtDouble(*info.sat_fraction);
      }
      os << "\n";
    }
    if (result.dead_position == static_cast<int>(k)) {
      if (result.dead_guard >= 0) {
        os << "    dead: guard #" << result.dead_guard
           << " provably false\n";
      } else {
        auto key = result.states[k + 1].EmptyKey();
        os << "    dead: guards jointly contradictory";
        if (key.first >= 0) {
          os << " (" << attr_name(key.first, key.second) << " in "
             << result.states[k + 1].Get(key.first, key.second).ToString()
             << ")";
        }
        os << "\n";
      }
    }
  }
  os << "  state " << positions.size() << " (accepting)\n";
  render_state(result.states[positions.size()]);
}

}  // namespace

Result<std::string> DumpModelFacts(const CaesarModel& model,
                                   const PlanOptions& plan_options) {
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan plan,
                          TranslateModel(model, plan_options));
  std::ostringstream os;
  for (const auto* queries : {&plan.deriving, &plan.processing}) {
    for (const CompiledQuery& query : *queries) {
      for (const auto& op : query.chain.ops) {
        if (op->kind() != Operator::Kind::kPattern) continue;
        const auto* pattern = static_cast<const PatternOp*>(op.get());
        os << "query " << query.name << "\n";
        DumpConfigFacts(pattern->config(), *plan.registry, os);
      }
    }
  }
  return os.str();
}

}  // namespace caesar
