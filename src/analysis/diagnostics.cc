#include "analysis/diagnostics.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

namespace caesar {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kC001UnreachableContext: return "C001";
    case DiagCode::kC002SelfLoopSwitch: return "C002";
    case DiagCode::kC003ShadowedSwitchEdge: return "C003";
    case DiagCode::kC004DeadQuery: return "C004";
    case DiagCode::kC005UnknownContext: return "C005";
    case DiagCode::kC006ProvablyEmptyContext: return "C006";
    case DiagCode::kE101UnknownEventType: return "E101";
    case DiagCode::kE102UnknownAttribute: return "E102";
    case DiagCode::kE103TypeMismatch: return "E103";
    case DiagCode::kE104NonBooleanPredicate: return "E104";
    case DiagCode::kE105BadAggregate: return "E105";
    case DiagCode::kE106DeriveSchemaConflict: return "E106";
    case DiagCode::kE107MissingPattern: return "E107";
    case DiagCode::kE108MissingDeriveOrAction: return "E108";
    case DiagCode::kE109NoPositiveItem: return "E109";
    case DiagCode::kW201ContradictoryPredicate: return "W201";
    case DiagCode::kW202UnsatisfiableSeq: return "W202";
    case DiagCode::kW203UngroupableWindow: return "W203";
    case DiagCode::kW204InvertedWindowBounds: return "W204";
    case DiagCode::kW205ConstantPredicate: return "W205";
    case DiagCode::kW206CrossPositionContradiction: return "W206";
    case DiagCode::kW207SubsumedGuard: return "W207";
    case DiagCode::kP301TooManyContexts: return "P301";
    case DiagCode::kP302TrailingNegation: return "P302";
    case DiagCode::kP303MultiNegatedPredicate: return "P303";
    case DiagCode::kP304PlanTranslation: return "P304";
    case DiagCode::kP305CompiledFallback: return "P305";
    case DiagCode::kI401OutOfOrder: return "I401";
    case DiagCode::kI402LateBeyondSlack: return "I402";
    case DiagCode::kI403UnknownType: return "I403";
    case DiagCode::kI404NegativeTime: return "I404";
    case DiagCode::kI405InvertedInterval: return "I405";
    case DiagCode::kI406MalformedCsv: return "I406";
    case DiagCode::kI410TornWalTail: return "I410";
    case DiagCode::kI411CheckpointCrcMismatch: return "I411";
    case DiagCode::kI412WalRecordCrcMismatch: return "I412";
    case DiagCode::kI413StaleWalRecord: return "I413";
    case DiagCode::kI420Backpressure: return "I420";
    case DiagCode::kI421UnknownTenant: return "I421";
    case DiagCode::kI422DuplicateTenant: return "I422";
    case DiagCode::kI423BadFrame: return "I423";
    case DiagCode::kI424AdmissionRejected: return "I424";
  }
  return "????";
}

const char* DiagCodeTitle(DiagCode code) {
  switch (code) {
    case DiagCode::kC001UnreachableContext: return "unreachable context";
    case DiagCode::kC002SelfLoopSwitch: return "self-loop switch edge";
    case DiagCode::kC003ShadowedSwitchEdge: return "shadowed switch edge";
    case DiagCode::kC004DeadQuery: return "dead query";
    case DiagCode::kC005UnknownContext: return "unknown context";
    case DiagCode::kC006ProvablyEmptyContext:
      return "provably empty context";
    case DiagCode::kE101UnknownEventType: return "unknown event type";
    case DiagCode::kE102UnknownAttribute: return "unknown attribute";
    case DiagCode::kE103TypeMismatch: return "type mismatch";
    case DiagCode::kE104NonBooleanPredicate: return "non-boolean predicate";
    case DiagCode::kE105BadAggregate: return "invalid aggregate";
    case DiagCode::kE106DeriveSchemaConflict: return "derive schema conflict";
    case DiagCode::kE107MissingPattern: return "missing pattern";
    case DiagCode::kE108MissingDeriveOrAction:
      return "missing derive or action";
    case DiagCode::kE109NoPositiveItem: return "no positive pattern item";
    case DiagCode::kW201ContradictoryPredicate:
      return "contradictory predicate";
    case DiagCode::kW202UnsatisfiableSeq: return "unsatisfiable sequence";
    case DiagCode::kW203UngroupableWindow: return "ungroupable window";
    case DiagCode::kW204InvertedWindowBounds: return "inverted window bounds";
    case DiagCode::kW205ConstantPredicate: return "constant predicate";
    case DiagCode::kW206CrossPositionContradiction:
      return "cross-position contradiction";
    case DiagCode::kW207SubsumedGuard: return "subsumed guard";
    case DiagCode::kP301TooManyContexts: return "too many contexts";
    case DiagCode::kP302TrailingNegation: return "trailing negation";
    case DiagCode::kP303MultiNegatedPredicate:
      return "predicate spans negated variables";
    case DiagCode::kP304PlanTranslation: return "plan translation failed";
    case DiagCode::kP305CompiledFallback:
      return "pattern falls back to interpreted matching";
    case DiagCode::kI401OutOfOrder: return "out of order";
    case DiagCode::kI402LateBeyondSlack: return "late beyond slack";
    case DiagCode::kI403UnknownType: return "unknown type id";
    case DiagCode::kI404NegativeTime: return "negative time";
    case DiagCode::kI405InvertedInterval: return "inverted interval";
    case DiagCode::kI406MalformedCsv: return "malformed CSV";
    case DiagCode::kI410TornWalTail: return "torn WAL tail truncated";
    case DiagCode::kI411CheckpointCrcMismatch:
      return "checkpoint CRC mismatch, skipped";
    case DiagCode::kI412WalRecordCrcMismatch:
      return "WAL record CRC mismatch, replay stopped";
    case DiagCode::kI413StaleWalRecord:
      return "stale WAL record skipped";
    case DiagCode::kI420Backpressure:
      return "ingest rejected: pending buffer full";
    case DiagCode::kI421UnknownTenant: return "unknown tenant";
    case DiagCode::kI422DuplicateTenant: return "tenant already registered";
    case DiagCode::kI423BadFrame: return "malformed frame or request";
    case DiagCode::kI424AdmissionRejected:
      return "model rejected by the admission gate";
  }
  return "?";
}

DiagSeverity DiagCodeDefaultSeverity(DiagCode code) {
  switch (code) {
    // Warnings: the model still runs; its semantics are just suspicious
    // (a query that can never fire, an optimization that silently
    // degrades, a provably redundant edge).
    case DiagCode::kC003ShadowedSwitchEdge:
    case DiagCode::kC004DeadQuery:
    case DiagCode::kC006ProvablyEmptyContext:
    case DiagCode::kW201ContradictoryPredicate:
    case DiagCode::kW202UnsatisfiableSeq:
    case DiagCode::kW204InvertedWindowBounds:
    case DiagCode::kW205ConstantPredicate:
    case DiagCode::kW206CrossPositionContradiction:
    case DiagCode::kW207SubsumedGuard:
    // Recovery degradation: the engine resumes (that is the point of the
    // WAL's commit boundary), but durability was imperfect — report it.
    case DiagCode::kI410TornWalTail:
    case DiagCode::kI411CheckpointCrcMismatch:
    case DiagCode::kI412WalRecordCrcMismatch:
    case DiagCode::kI413StaleWalRecord:
      return DiagSeverity::kWarning;
    // Notes: purely informational (why an optimization does not apply).
    case DiagCode::kW203UngroupableWindow:
    case DiagCode::kP305CompiledFallback:
      return DiagSeverity::kNote;
    default:
      return DiagSeverity::kError;
  }
}

Diagnostic MakeDiag(DiagCode code, std::string message, SourceLoc loc,
                    std::string query, std::string context) {
  Diagnostic diag;
  diag.code = code;
  diag.severity = DiagCodeDefaultSeverity(code);
  diag.loc = loc;
  diag.message = std::move(message);
  diag.query = std::move(query);
  diag.context = std::move(context);
  return diag;
}

std::string FormatDiagnostic(const Diagnostic& diag) {
  std::string out;
  if (!diag.source.empty()) {
    out += diag.source;
    out += ':';
    if (diag.loc.valid()) {
      out += diag.loc.ToString();
      out += ':';
    }
    out += ' ';
  } else if (diag.loc.valid()) {
    out += diag.loc.ToString() + ": ";
  }
  out += DiagSeverityName(diag.severity);
  out += '[';
  out += DiagCodeName(diag.code);
  out += "]: ";
  out += diag.message;
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& diag : diags) {
    if (diag.severity == DiagSeverity::kError) return true;
  }
  return false;
}

bool HasErrorsOrWarnings(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& diag : diags) {
    if (diag.severity != DiagSeverity::kNote) return true;
  }
  return false;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.source, a.loc.line, a.loc.col, a.code,
                                     a.message, a.query) <
                            std::tie(b.source, b.loc.line, b.loc.col, b.code,
                                     b.message, b.query);
                   });
}

namespace {

// JSON string escaping (control chars, quotes, backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDiagJson(std::ostringstream& os, const Diagnostic& diag) {
  os << "{\"code\":\"" << DiagCodeName(diag.code) << "\",\"severity\":\""
     << DiagSeverityName(diag.severity) << "\",\"source\":\""
     << JsonEscape(diag.source) << "\",\"line\":" << diag.loc.line
     << ",\"col\":" << diag.loc.col << ",\"message\":\""
     << JsonEscape(diag.message) << "\"";
  if (!diag.query.empty()) {
    os << ",\"query\":\"" << JsonEscape(diag.query) << "\"";
  }
  if (!diag.context.empty()) {
    os << ",\"context\":\"" << JsonEscape(diag.context) << "\"";
  }
  os << "}";
}

// SARIF severity levels: error/warning/note map 1:1.
const char* SarifLevel(DiagSeverity severity) {
  return DiagSeverityName(severity);
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  os << "{\"tool\":\"caesar_lint\",\"version\":1,\"diagnostics\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    if (i > 0) os << ",";
    AppendDiagJson(os, diags[i]);
  }
  os << "],\"errors\":" << (HasErrors(diags) ? "true" : "false") << "}\n";
  return os.str();
}

std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags) {
  // Rule catalog: one entry per distinct code, code-sorted for determinism.
  std::set<std::string> rule_ids;
  std::vector<DiagCode> rules;
  for (const Diagnostic& diag : diags) {
    if (rule_ids.insert(DiagCodeName(diag.code)).second) {
      rules.push_back(diag.code);
    }
  }
  std::sort(rules.begin(), rules.end());

  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":"
        "{\"name\":\"caesar_lint\",\"informationUri\":"
        "\"https://example.invalid/caesar\",\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"id\":\"" << DiagCodeName(rules[i])
       << "\",\"shortDescription\":{\"text\":\""
       << JsonEscape(DiagCodeTitle(rules[i])) << "\"}}";
  }
  os << "]}},\"results\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& diag = diags[i];
    if (i > 0) os << ",";
    os << "{\"ruleId\":\"" << DiagCodeName(diag.code) << "\",\"level\":\""
       << SarifLevel(diag.severity) << "\",\"message\":{\"text\":\""
       << JsonEscape(diag.message) << "\"}";
    if (!diag.source.empty()) {
      os << ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
            "{\"uri\":\""
         << JsonEscape(diag.source) << "\"}";
      if (diag.loc.valid()) {
        os << ",\"region\":{\"startLine\":" << diag.loc.line
           << ",\"startColumn\":" << diag.loc.col << "}";
      }
      os << "}}]";
    }
    os << "}";
  }
  os << "]}]}\n";
  return os.str();
}

}  // namespace caesar
