// Abstract interpretation over pattern predicates (the "caesar-absint"
// pass): an interval domain per (pattern variable, attribute), propagated
// across SEQ positions so facts established when position k binds (e.g.
// `speed > 80`) refine what positions k+1..n can observe.
//
// The domain is the product of per-attribute intervals (expr/analysis.h's
// Interval, with open/closed endpoints) plus the set of variable-variable
// comparison edges seen so far. Joining facts means intersecting intervals;
// edges propagate bounds between attributes (x < y caps x's upper bound at
// y's and lifts y's lower bound to x's) to a fixpoint. Widening is by
// truncation: propagation stops after a fixed round count, leaving the
// remaining intervals wider than necessary — wider is always sound, the
// facts are an over-approximation of every value a live run can hold.
//
// Soundness contract (the analyzer -> compiler facts contract):
//  - `AbstractPredicate` lifts a compiled predicate to a conjunction of
//    constraints each of which the predicate *implies*; `exact` is set when
//    the constraints capture the predicate completely.
//  - Every concrete run reaching state k satisfies `states[k]` — so a guard
//    provably true on the whole fact region is implied by the guards
//    already evaluated (safe to prune), and a guard provably false on it
//    can never pass (the automaton is dead from that transition on).
//  - Verdict kTrue additionally requires the checked predicate's
//    abstraction to be exact; kFalse does not (one false conjunct falsifies
//    the conjunction).
//
// Consumers: the analyzer (W206 cross-position contradiction, W207 subsumed
// guard, C006 provably-empty context), the pattern compiler (guard pruning
// and satisfiable-fraction selectivities, compile/compiler.h), and
// `caesar_lint --dump-facts`.

#ifndef CAESAR_ANALYSIS_ABSINT_H_
#define CAESAR_ANALYSIS_ABSINT_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "expr/analysis.h"
#include "expr/compiled.h"

namespace caesar {

class CaesarModel;
struct PlanOptions;

// One atomic constraint lifted from a compiled predicate, normalized to
// `var.attr op rhs` with the attribute reference on the left.
struct AbsConstraint {
  enum class Kind : int8_t { kThreshold, kVarVar };
  Kind kind = Kind::kThreshold;
  int var = 0;   // binding index of the left operand
  int attr = 0;  // attribute index within its schema
  BinaryOp op = BinaryOp::kEq;  // comparison (never kNe)
  double value = 0;             // kThreshold: the numeric threshold
  int rhs_var = 0;              // kVarVar: right operand
  int rhs_attr = 0;
};

// Conjunction of constraints implied by one predicate. `exact` means the
// constraints capture the predicate completely (every conjunct converted).
struct AbsPredicate {
  std::vector<AbsConstraint> constraints;
  bool exact = false;
};

// Lifts a compiled predicate. Conjuncts that are not threshold or
// variable-variable comparisons (kNe, arithmetic, OR trees, string
// constants) are dropped and clear `exact`.
AbsPredicate AbstractPredicate(const CompiledExpr& expr);

enum class AbsVerdict : int8_t { kUnknown, kTrue, kFalse };

const char* AbsVerdictName(AbsVerdict verdict);

// The abstract state: one interval per (var, attr) seen so far (absent
// means unbounded) plus the relational edges being propagated.
class IntervalFacts {
 public:
  // Interval for (var, attr); the unbounded interval when unconstrained.
  Interval Get(int var, int attr) const;

  // Verdict for `constraint` / `pred` against the current facts, *before*
  // applying it. See the soundness contract in the header comment.
  AbsVerdict Check(const AbsConstraint& constraint) const;
  AbsVerdict Check(const AbsPredicate& pred) const;

  // Conjoins `pred` onto the facts: intersects threshold intervals, records
  // variable-variable edges, and propagates bounds to a (truncated)
  // fixpoint.
  void Apply(const AbsPredicate& pred);

  // True when some interval became empty: the state is unreachable.
  bool contradiction() const { return contradiction_; }
  // The first (var, attr) whose interval is empty; {-1, -1} when none.
  std::pair<int, int> EmptyKey() const;

  // Fraction of the incoming fact region that satisfies `pred`'s threshold
  // constraints: product over constrained attributes of
  // width(facts ∩ guard) / width(facts), for attributes whose fact interval
  // has finite nonzero width. nullopt when no attribute qualifies — the
  // caller keeps its static selectivity estimate.
  std::optional<double> SatisfiableFraction(const AbsPredicate& pred) const;

  const std::map<std::pair<int, int>, Interval>& intervals() const {
    return intervals_;
  }

 private:
  void Propagate();

  struct Edge {
    int var, attr;
    BinaryOp op;
    int rhs_var, rhs_attr;
  };

  std::map<std::pair<int, int>, Interval> intervals_;
  std::vector<Edge> edges_;
  bool contradiction_ = false;
};

// One pattern position for the cross-position analysis: the guards that
// must pass for the position to bind, in config order.
struct AbsPosition {
  bool negated = false;
  std::vector<AbsPredicate> guards;
};

// Per-guard result: the verdict against the facts accumulated from earlier
// positions and earlier guards of the same position.
struct AbsGuardInfo {
  AbsVerdict verdict = AbsVerdict::kUnknown;
  std::optional<double> sat_fraction;
};

struct PatternAbsintResult {
  // states[k] holds on entry to position k (facts from positions < k);
  // states[positions.size()] holds at completion. Negated positions do not
  // contribute facts (non-occurrence constrains nothing).
  std::vector<IntervalFacts> states;
  // Parallel to the input positions; inner vectors parallel to guards.
  std::vector<std::vector<AbsGuardInfo>> guards;
  // First position that provably can never be passed, or -1. When >= 0 the
  // pattern can never complete (the automaton is dead). `dead_guard` is the
  // guard proven false, or -1 when the guards are jointly contradictory.
  int dead_position = -1;
  int dead_guard = -1;

  bool dead() const { return dead_position >= 0; }
};

// Runs the cross-position interval analysis: facts accumulate through the
// positive positions in sequence order; each guard is checked against the
// facts before it and then conjoined.
PatternAbsintResult AnalyzePositions(const std::vector<AbsPosition>& positions);

// Translates `model` and renders the per-state interval facts of every
// pattern operator in plan order, one block per operator prefixed by
// "query <name>". Deterministic; backs `caesar_lint --dump-facts`.
Result<std::string> DumpModelFacts(const CaesarModel& model,
                                   const PlanOptions& plan_options);

}  // namespace caesar

#endif  // CAESAR_ANALYSIS_ABSINT_H_
