#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/absint.h"
#include "compile/compiler.h"
#include "event/schema.h"
#include "expr/analysis.h"
#include "expr/compiled.h"
#include "optimizer/overlap_analysis.h"
#include "plan/translator.h"
#include "runtime/context_vector.h"

namespace caesar {

namespace {

std::string QueryLabel(const Query& query, int qi) {
  return query.name.empty() ? "query #" + std::to_string(qi) : query.name;
}

// Compile() reports both name-resolution and operand-type failures as
// InvalidArgument; the wording tells them apart (see expr/compiled.cc).
DiagCode ClassifyCompileError(const std::string& message) {
  if (message.find("attribute") != std::string::npos ||
      message.find("variable") != std::string::npos) {
    return DiagCode::kE102UnknownAttribute;
  }
  return DiagCode::kE103TypeMismatch;
}

// Single threshold comparison "var.attr op const" (mirrors the static
// helper in optimizer/overlap_analysis.cc; kept in sync so W203/W204
// explain exactly why ExtractWindowBounds skipped a context).
bool SingleThreshold(const ExprPtr& where, std::string* attr, double* key,
                     BinaryOp* op) {
  if (where == nullptr) return false;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(where);
  if (conjuncts.size() != 1) return false;
  std::optional<AttrConstraint> constraint = ExtractConstraint(conjuncts[0]);
  if (!constraint.has_value()) return false;
  *attr = constraint->variable + "." + constraint->attribute;
  *key = constraint->value;
  *op = constraint->op;
  return true;
}

// Thresholds that mark a single upward crossing of a monotone-rising
// signal: `attr == K` (one-shot bound) and `attr >= K` / `attr > K` both
// first hold at attr = K. `<=` / `<` thresholds hold from the start
// instead (the closing half of a hysteresis window) and carry no crossing
// order.
bool IsRisingCrossing(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

// C006: every event that can initiate the context also terminates it, so
// each window closes the moment it opens. Both queries must match a single
// positive event of the same type; the implication compares attribute-keyed
// interval summaries (each query binds the event under its own variable
// name, so variable-qualified keys cannot be compared directly) and needs
// both summaries exact. A contradictory initiating predicate is excluded —
// that context never opens at all, which W201 already explains.
bool ProvablyEmptyContext(const Query& init, const Query& term) {
  auto single_positive = [](const Query& q) -> const PatternItem* {
    if (!q.pattern.has_value()) return nullptr;
    if (q.pattern->kind == PatternSpec::Kind::kAggregate) return nullptr;
    if (q.pattern->items.size() != 1 || q.pattern->items[0].negated) {
      return nullptr;
    }
    return &q.pattern->items[0];
  };
  const PatternItem* init_item = single_positive(init);
  const PatternItem* term_item = single_positive(term);
  if (init_item == nullptr || term_item == nullptr) return false;
  if (init_item->event_type != term_item->event_type) return false;

  auto normalize = [](const Query& q, const PatternItem& item,
                      std::map<std::string, Interval>* out) {
    PredicateSummary summary = PredicateSummary::FromExpr(q.where);
    if (!summary.exact()) return false;
    for (const auto& [key, interval] : summary.intervals()) {
      if (!key.first.empty() && key.first != item.variable) return false;
      auto [it, inserted] = out->emplace(key.second, interval);
      if (!inserted) it->second.IntersectWith(interval);
    }
    return true;
  };
  std::map<std::string, Interval> init_map, term_map;
  if (!normalize(init, *init_item, &init_map)) return false;
  if (!normalize(term, *term_item, &term_map)) return false;
  for (const auto& [attr, interval] : init_map) {
    if (interval.IsEmpty()) return false;  // never initiates (W201)
  }
  for (const auto& [attr, term_interval] : term_map) {
    auto it = init_map.find(attr);
    Interval init_interval = it == init_map.end() ? Interval() : it->second;
    if (!init_interval.ContainedIn(term_interval)) return false;
  }
  return true;
}

// Derived-type resolution state of one query.
enum class ResolveState : int8_t { kPending, kResolved, kPoisoned, kSkipped };

struct QueryInfo {
  ResolveState state = ResolveState::kPending;
  BindingSet bindings;          // kEvent/kSeq: one var per pattern item
  std::vector<int> negated;     // binding indices of negated items
  Schema agg_schema;            // kAggregate: post-aggregation schema
  bool agg_schema_ok = false;
};

class Analyzer {
 public:
  Analyzer(const CaesarModel& model, const AnalyzerOptions& options)
      : model_(model), options_(options), infos_(model.num_queries()) {}

  std::vector<Diagnostic> Run() {
    CheckStructure();
    for (Diagnostic& diag : AnalyzeContextGraph(model_)) {
      diags_.push_back(std::move(diag));
    }
    CheckPlanLimits();
    ResolveTypesAndCheckExpressions();
    CheckWindows();
    if (options_.check_plan && !HasErrors(diags_)) {
      auto plan = TranslateModel(model_, PlanOptions{});
      if (!plan.ok()) {
        Emit(DiagCode::kP304PlanTranslation,
             "plan translation failed: " + plan.status().message());
      }
    }
    for (Diagnostic& diag : diags_) {
      if (diag.source.empty()) diag.source = options_.source_name;
    }
    if (!options_.include_notes) {
      diags_.erase(std::remove_if(diags_.begin(), diags_.end(),
                                  [](const Diagnostic& d) {
                                    return d.severity == DiagSeverity::kNote;
                                  }),
                   diags_.end());
    }
    SortDiagnostics(&diags_);
    return std::move(diags_);
  }

 private:
  void Emit(DiagCode code, std::string message, SourceLoc loc = {},
            std::string query = {}, std::string context = {}) {
    diags_.push_back(MakeDiag(code, std::move(message), loc, std::move(query),
                              std::move(context)));
  }

  // ----- Pass 1: structure (lenient mirror of CaesarModel::Validate). -----

  void CheckStructure() {
    if (model_.num_contexts() == 0) {
      Emit(DiagCode::kC005UnknownContext, "model declares no contexts");
    } else if (model_.ContextIndex(model_.default_context()) < 0) {
      Emit(DiagCode::kC005UnknownContext,
           "default context not declared: " + model_.default_context());
    }
    for (int qi = 0; qi < model_.num_queries(); ++qi) {
      const Query& query = model_.query(qi);
      std::string label = QueryLabel(query, qi);
      if (!query.pattern.has_value() || query.pattern->items.empty()) {
        Emit(DiagCode::kE107MissingPattern,
             "query '" + label + "': missing PATTERN clause", query.loc,
             label);
        infos_[qi].state = ResolveState::kSkipped;
      }
      if (query.action == ContextAction::kNone && !query.derive.has_value() &&
          !query.derivation_helper) {
        Emit(DiagCode::kE108MissingDeriveOrAction,
             "query '" + label + "': needs a DERIVE clause or a context action",
             query.loc, label);
      }
      if (query.action != ContextAction::kNone &&
          model_.ContextIndex(query.target_context) < 0) {
        Emit(DiagCode::kC005UnknownContext,
             "query '" + label + "': unknown target context " +
                 query.target_context,
             query.loc, label, query.target_context);
      }
      for (const std::string& context_name : query.contexts) {
        if (model_.ContextIndex(context_name) < 0) {
          Emit(DiagCode::kC005UnknownContext,
               "query '" + label + "': unknown context " + context_name,
               query.loc, label, context_name);
        }
      }
      if (!query.context_anchors.empty()) {
        if (query.context_anchors.size() != query.contexts.size()) {
          Emit(DiagCode::kC005UnknownContext,
               "query '" + label +
                   "': context_anchors must parallel the CONTEXT clause",
               query.loc, label);
        }
        for (const std::string& anchor : query.context_anchors) {
          if (model_.ContextIndex(anchor) < 0) {
            Emit(DiagCode::kC005UnknownContext,
                 "query '" + label + "': unknown anchor " + anchor, query.loc,
                 label, anchor);
          }
        }
      }
      if (!query.pattern.has_value()) continue;
      const PatternSpec& pattern = *query.pattern;
      if (pattern.kind == PatternSpec::Kind::kSeq && !pattern.items.empty()) {
        bool has_positive = false;
        for (const PatternItem& item : pattern.items) {
          if (!item.negated) has_positive = true;
        }
        if (!has_positive) {
          Emit(DiagCode::kE109NoPositiveItem,
               "query '" + label + "': pattern has no positive event",
               query.pattern_loc, label);
        }
        if (pattern.items.back().negated) {
          Emit(DiagCode::kP302TrailingNegation,
               "query '" + label +
                   "': SEQ pattern ends with a negated position (trailing "
                   "NOT has no bounded semantics)",
               query.pattern_loc, label);
        }
      }
      if (pattern.kind == PatternSpec::Kind::kAggregate) {
        if (pattern.items.size() != 1 || pattern.items[0].negated) {
          Emit(DiagCode::kE105BadAggregate,
               "query '" + label + "': aggregate pattern needs one positive "
                                   "input",
               query.pattern_loc, label);
          infos_[qi].state = ResolveState::kSkipped;
        }
        if (pattern.window_length <= 0) {
          Emit(DiagCode::kE105BadAggregate,
               "query '" + label + "': aggregate pattern needs a positive "
                                   "window length",
               query.pattern_loc, label);
        }
      }
    }
  }

  // ----- Pass 2: plan-capacity limits. -----

  void CheckPlanLimits() {
    if (model_.num_contexts() > kMaxContexts) {
      Emit(DiagCode::kP301TooManyContexts,
           "model declares " + std::to_string(model_.num_contexts()) +
               " contexts; the runtime context vector holds at most " +
               std::to_string(kMaxContexts));
    }
  }

  // ----- Pass 3: derived-type fixpoint + expression checks. -----

  const Schema* LookupSchema(const std::string& type_name) const {
    TypeId id = model_.registry()->Lookup(type_name);
    if (id != kInvalidTypeId) return &model_.registry()->type(id).schema;
    auto it = derived_.find(type_name);
    if (it != derived_.end()) return &it->second;
    return nullptr;
  }

  void PoisonOutput(const Query& query) {
    if (!query.derive.has_value()) return;
    const std::string& name = query.derive->event_type;
    if (LookupSchema(name) == nullptr) poisoned_.insert(name);
  }

  void ResolveTypesAndCheckExpressions() {
    // Who derives what (first deriver wins, as in the translator).
    std::map<std::string, std::string> deriver;
    for (int qi = 0; qi < model_.num_queries(); ++qi) {
      const Query& query = model_.query(qi);
      if (!query.derive.has_value()) continue;
      deriver.emplace(query.derive->event_type, QueryLabel(query, qi));
    }
    // Fixpoint: a query resolves once every pattern item type is known
    // (registered or derived by an already-resolved query).
    bool progress = true;
    while (progress) {
      progress = false;
      for (int qi = 0; qi < model_.num_queries(); ++qi) {
        if (infos_[qi].state != ResolveState::kPending) continue;
        const Query& query = model_.query(qi);
        bool available = true;
        bool poisoned = false;
        for (const PatternItem& item : query.pattern->items) {
          if (LookupSchema(item.event_type) != nullptr) continue;
          if (poisoned_.count(item.event_type) > 0) {
            poisoned = true;
            continue;
          }
          available = false;
        }
        if (!available) continue;
        progress = true;
        if (poisoned) {
          // The defect is in the producing query; stay quiet here.
          infos_[qi].state = ResolveState::kPoisoned;
          PoisonOutput(query);
          continue;
        }
        infos_[qi].state = ResolveState::kResolved;
        CheckResolvedQuery(qi);
      }
    }
    // Whatever is still pending references a type nobody defines (or a
    // derivation cycle).
    for (int qi = 0; qi < model_.num_queries(); ++qi) {
      if (infos_[qi].state != ResolveState::kPending) continue;
      const Query& query = model_.query(qi);
      std::string label = QueryLabel(query, qi);
      std::set<std::string> reported;
      for (const PatternItem& item : query.pattern->items) {
        if (LookupSchema(item.event_type) != nullptr) continue;
        if (poisoned_.count(item.event_type) > 0) continue;
        if (!reported.insert(item.event_type).second) continue;
        auto it = deriver.find(item.event_type);
        std::string message =
            "query '" + label + "': unknown event type " + item.event_type;
        if (it != deriver.end()) {
          message += " (derived by query '" + it->second +
                     "', which did not resolve — derivation cycle?)";
        }
        Emit(DiagCode::kE101UnknownEventType, message, query.pattern_loc,
             label);
      }
      PoisonOutput(query);
    }
  }

  // Compiles `expr` and reports E102/E103/E104, W205 (constant folding) and
  // W201 (interval contradiction). Returns the compiled expr when usable.
  std::unique_ptr<CompiledExpr> CheckPredicate(const ExprPtr& expr,
                                               const BindingSet& bindings,
                                               SourceLoc loc,
                                               const std::string& clause,
                                               const std::string& label) {
    auto compiled = Compile(expr, bindings);
    if (!compiled.ok()) {
      Emit(ClassifyCompileError(compiled.status().message()),
           "query '" + label + "': " + clause + ": " +
               compiled.status().message(),
           loc, label);
      return nullptr;
    }
    std::unique_ptr<CompiledExpr> result = std::move(compiled).value();
    if (result->result_type() == ValueType::kString) {
      Emit(DiagCode::kE104NonBooleanPredicate,
           "query '" + label + "': " + clause +
               " predicate has type string; expected a boolean condition",
           loc, label);
      return result;
    }
    if (result->referenced_vars().empty()) {
      bool value = result->EvalBool(nullptr);
      Emit(DiagCode::kW205ConstantPredicate,
           "query '" + label + "': " + clause + " predicate is constantly " +
               (value ? "true" : "false (the clause can never be satisfied)"),
           loc, label);
      return result;
    }
    PredicateSummary summary = PredicateSummary::FromExpr(expr);
    if (summary.exact()) {
      for (const auto& [key, interval] : summary.intervals()) {
        if (!interval.IsEmpty()) continue;
        std::string attr =
            key.first.empty() ? key.second : key.first + "." + key.second;
        Emit(DiagCode::kW201ContradictoryPredicate,
             "query '" + label + "': " + clause +
                 " predicate is contradictory: " + attr +
                 " is constrained to the empty set " + interval.ToString(),
             loc, label);
        break;
      }
    }
    return result;
  }

  void CheckResolvedQuery(int qi) {
    const Query& query = model_.query(qi);
    QueryInfo& info = infos_[qi];
    std::string label = QueryLabel(query, qi);
    const PatternSpec& pattern = *query.pattern;

    if (pattern.kind == PatternSpec::Kind::kAggregate) {
      CheckAggregateQuery(qi);
      return;
    }

    // Bindings: one variable per pattern position, negated included (the
    // matcher evaluates negation conditions against them).
    for (size_t i = 0; i < pattern.items.size(); ++i) {
      const PatternItem& item = pattern.items[i];
      BindingVar var;
      var.name = item.variable;
      var.type_id = model_.registry()->Lookup(item.event_type);
      var.schema = LookupSchema(item.event_type);
      info.bindings.Add(std::move(var));
      if (item.negated) info.negated.push_back(static_cast<int>(i));
    }

    if (query.where != nullptr) {
      auto where = CheckPredicate(query.where, info.bindings, query.where_loc,
                                  "WHERE", label);
      // P303: one conjunct constraining several negated positions has no
      // single matcher to attach to (the translator rejects it).
      if (where != nullptr && pattern.kind == PatternSpec::Kind::kSeq &&
          info.negated.size() > 1) {
        for (const ExprPtr& conjunct : SplitConjuncts(query.where)) {
          auto compiled = Compile(conjunct, info.bindings);
          if (!compiled.ok()) continue;
          int negated_refs = 0;
          for (int var : compiled.value()->referenced_vars()) {
            if (std::find(info.negated.begin(), info.negated.end(), var) !=
                info.negated.end()) {
              ++negated_refs;
            }
          }
          if (negated_refs > 1) {
            Emit(DiagCode::kP303MultiNegatedPredicate,
                 "query '" + label + "': WHERE conjunct '" +
                     conjunct->ToString() +
                     "' references multiple negated pattern variables",
                 query.where_loc, label);
          }
        }
      }
    }

    // P305: the automaton compiler caps pattern width; wider SEQs run
    // interpreted regardless of EngineOptions::pattern_engine.
    if (pattern.kind == PatternSpec::Kind::kSeq &&
        static_cast<int>(pattern.items.size()) > kMaxCompiledPositions) {
      Emit(DiagCode::kP305CompiledFallback,
           "query '" + label + "': SEQ of " +
               std::to_string(pattern.items.size()) +
               " positions exceeds the automaton compiler's limit of " +
               std::to_string(kMaxCompiledPositions) +
               "; the compiled pattern engine falls back to interpreted "
               "matching here",
           query.pattern_loc, label);
    }

    // W202: SEQ positions carry strictly increasing timestamps, so a match
    // of n positive positions spans at least n-1 time units.
    if (pattern.kind == PatternSpec::Kind::kSeq && pattern.within > 0) {
      int positive = 0;
      for (const PatternItem& item : pattern.items) {
        if (!item.negated) ++positive;
      }
      if (positive >= 2 && pattern.within < positive - 1) {
        Emit(DiagCode::kW202UnsatisfiableSeq,
             "query '" + label + "': SEQ of " + std::to_string(positive) +
                 " positive positions spans at least " +
                 std::to_string(positive - 1) +
                 " time units (timestamps strictly increase) but WITHIN is " +
                 std::to_string(pattern.within),
             query.pattern_loc, label);
      }
    }

    CheckCrossPositionFacts(qi);

    if (query.derive.has_value()) {
      CheckDeriveClause(qi, info.bindings, /*post_aggregate=*/false);
    }
  }

  // "var.attr" rendering for interval-fact messages.
  std::string FactName(const BindingSet& bindings, int var, int attr) {
    std::string name = bindings.var(var).name;
    if (name.empty()) name = "#" + std::to_string(var);
    name += ".";
    const Schema* schema = bindings.var(var).schema;
    if (schema != nullptr && attr >= 0 && attr < schema->num_attributes()) {
      name += schema->attribute(attr).name;
    } else {
      name += "a" + std::to_string(attr);
    }
    return name;
  }

  // ----- absint: cross-position interval facts (W206 / W207). -----
  //
  // Compiles each WHERE conjunct separately, assigns it to the latest
  // pattern position it references (where the matcher first evaluates it),
  // and runs the interval analysis across positions (analysis/absint.h): a
  // conjunct provably true under the facts accumulated before it is
  // subsumed (W207); one provably false — or facts that become jointly
  // empty — means no match can ever complete (W206).
  void CheckCrossPositionFacts(int qi) {
    const Query& query = model_.query(qi);
    const QueryInfo& info = infos_[qi];
    if (query.where == nullptr) return;
    const PatternSpec& pattern = *query.pattern;
    std::string label = QueryLabel(query, qi);

    std::vector<AbsPosition> positions(pattern.items.size());
    std::vector<std::vector<ExprPtr>> sources(pattern.items.size());
    for (size_t i = 0; i < pattern.items.size(); ++i) {
      positions[i].negated = pattern.items[i].negated;
    }
    for (const ExprPtr& conjunct : SplitConjuncts(query.where)) {
      auto compiled = Compile(conjunct, info.bindings);
      if (!compiled.ok()) return;  // compile errors already reported
      const std::vector<int>& vars = compiled.value()->referenced_vars();
      if (vars.empty()) continue;  // constant: W205 territory
      bool negated_ref = false;
      int position = 0;
      for (int var : vars) {
        if (std::find(info.negated.begin(), info.negated.end(), var) !=
            info.negated.end()) {
          negated_ref = true;
        }
        position = std::max(position, var);
      }
      // Conjuncts over negated variables define the negation condition;
      // they are not guards a run must pass.
      if (negated_ref) continue;
      positions[position].guards.push_back(
          AbstractPredicate(*compiled.value()));
      sources[position].push_back(conjunct);
    }

    PatternAbsintResult result = AnalyzePositions(positions);

    for (size_t k = 0; k < positions.size(); ++k) {
      for (size_t g = 0; g < positions[k].guards.size(); ++g) {
        if (result.guards[k][g].verdict != AbsVerdict::kTrue) continue;
        Emit(DiagCode::kW207SubsumedGuard,
             "query '" + label + "': WHERE conjunct '" +
                 sources[k][g]->ToString() +
                 "' is subsumed: the constraints accumulated before it "
                 "already imply it",
             query.where_loc, label);
      }
    }

    if (!result.dead()) return;
    if (pattern.kind != PatternSpec::Kind::kSeq || pattern.items.size() < 2) {
      return;
    }
    // W201 already explains a flat per-attribute contradiction; W206 adds
    // the cross-position cases its summary cannot see.
    for (const Diagnostic& diag : diags_) {
      if (diag.code == DiagCode::kW201ContradictoryPredicate &&
          diag.query == label) {
        return;
      }
    }
    std::ostringstream message;
    message << "query '" << label << "': SEQ can never complete: ";
    if (result.dead_guard >= 0) {
      message << "WHERE conjunct '"
              << sources[result.dead_position][result.dead_guard]->ToString()
              << "' can never hold under the constraints accumulated from "
                 "earlier positions";
    } else {
      const IntervalFacts& after = result.states[result.dead_position + 1];
      auto key = after.EmptyKey();
      message << "the constraints accumulated at position "
              << result.dead_position << " leave ";
      if (key.first >= 0) {
        message << FactName(info.bindings, key.first, key.second)
                << " constrained to the empty set "
                << after.Get(key.first, key.second).ToString();
      } else {
        message << "an attribute constrained to the empty set";
      }
    }
    Emit(DiagCode::kW206CrossPositionContradiction, message.str(),
         query.where_loc, label);
  }

  void CheckAggregateQuery(int qi) {
    const Query& query = model_.query(qi);
    QueryInfo& info = infos_[qi];
    std::string label = QueryLabel(query, qi);
    const PatternSpec& pattern = *query.pattern;
    const PatternItem& input = pattern.items[0];
    const Schema* input_schema = LookupSchema(input.event_type);

    BindingVar in_var;
    in_var.name = input.variable;
    in_var.type_id = model_.registry()->Lookup(input.event_type);
    in_var.schema = input_schema;
    info.bindings.Add(in_var);

    // Post-aggregation schema: group-by attributes keep their input type;
    // COUNT yields int, every other aggregate a double (translator
    // BuildAggregate).
    std::vector<Attribute> out_attrs;
    bool agg_ok = true;
    for (const std::string& group_attr : pattern.group_by) {
      int index = input_schema->IndexOf(group_attr);
      if (index < 0) {
        Emit(DiagCode::kE105BadAggregate,
             "query '" + label + "': unknown group-by attribute " + group_attr,
             query.pattern_loc, label);
        agg_ok = false;
        continue;
      }
      out_attrs.push_back(input_schema->attribute(index));
    }
    for (const AggregateSpec& agg : pattern.aggregates) {
      if (agg.attribute.empty()) {
        if (agg.func != AggregateFunc::kCount) {
          Emit(DiagCode::kE105BadAggregate,
               "query '" + label + "': only COUNT may omit its attribute (" +
                   AggregateFuncName(agg.func) + " AS " + agg.name + ")",
               query.pattern_loc, label);
          agg_ok = false;
        }
      } else if (input_schema->IndexOf(agg.attribute) < 0) {
        Emit(DiagCode::kE105BadAggregate,
             "query '" + label + "': unknown aggregate attribute " +
                 agg.attribute,
             query.pattern_loc, label);
        agg_ok = false;
        continue;
      }
      out_attrs.push_back(Attribute{
          agg.name, agg.func == AggregateFunc::kCount ? ValueType::kInt
                                                      : ValueType::kDouble});
    }
    if (!agg_ok) {
      PoisonOutput(query);
      return;
    }
    info.agg_schema = Schema(std::move(out_attrs));
    info.agg_schema_ok = true;

    BindingSet post_bindings;
    BindingVar post_var;
    post_var.name = input.variable;
    post_var.schema = &info.agg_schema;
    post_bindings.Add(post_var);

    // WHERE on an aggregate pattern filters the aggregate's output rows
    // (translator: post_where compiled against post_bindings), not the
    // input events — so it is checked against the post-aggregation schema.
    if (query.where != nullptr) {
      CheckPredicate(query.where, post_bindings, query.where_loc, "WHERE",
                     label);
    }

    if (pattern.having != nullptr) {
      CheckPredicate(pattern.having, post_bindings, query.pattern_loc,
                     "HAVING", label);
    }
    if (query.derive.has_value()) {
      CheckDeriveClause(qi, post_bindings, /*post_aggregate=*/true);
    }
  }

  // Compiles the DERIVE arguments, reports E102/E103 (and references to
  // negated pattern variables), computes the derived schema, and registers
  // it for downstream queries — reporting E106 on conflicts.
  void CheckDeriveClause(int qi, const BindingSet& bindings,
                         bool post_aggregate) {
    const Query& query = model_.query(qi);
    const QueryInfo& info = infos_[qi];
    std::string label = QueryLabel(query, qi);
    const DeriveSpec& derive = *query.derive;

    std::vector<Attribute> attrs;
    std::set<std::string> used_names;
    bool ok = true;
    for (size_t i = 0; i < derive.args.size(); ++i) {
      const ExprPtr& arg = derive.args[i];
      auto compiled = Compile(arg, bindings);
      if (!compiled.ok()) {
        Emit(ClassifyCompileError(compiled.status().message()),
             "query '" + label + "': DERIVE argument '" + arg->ToString() +
                 "': " + compiled.status().message(),
             query.loc, label);
        ok = false;
        continue;
      }
      if (!post_aggregate) {
        for (int var : compiled.value()->referenced_vars()) {
          if (std::find(info.negated.begin(), info.negated.end(), var) !=
              info.negated.end()) {
            Emit(DiagCode::kE102UnknownAttribute,
                 "query '" + label +
                     "': attribute of negated variable used outside the "
                     "pattern: " +
                     arg->ToString(),
                 query.loc, label);
            ok = false;
          }
        }
      }
      // Output attribute name: explicit AS name, the referenced attribute's
      // name, or a positional fallback (translator InferAttrName).
      std::string name;
      if (i < derive.attr_names.size()) name = derive.attr_names[i];
      if (name.empty() && arg->kind() == Expr::Kind::kAttrRef) {
        name = static_cast<const AttrRefExpr&>(*arg).attribute();
      }
      if (name.empty()) name = "a" + std::to_string(i);
      if (!used_names.insert(name).second) {
        name += "_" + std::to_string(i);
        used_names.insert(name);
      }
      attrs.push_back(Attribute{name, compiled.value()->result_type()});
    }
    if (!ok) {
      PoisonOutput(query);
      return;
    }

    const std::string& type_name = derive.event_type;
    TypeId registered = model_.registry()->Lookup(type_name);
    if (registered != kInvalidTypeId) {
      const Schema& existing = model_.registry()->type(registered).schema;
      if (existing.num_attributes() != static_cast<int>(attrs.size())) {
        Emit(DiagCode::kE106DeriveSchemaConflict,
             "query '" + label + "': derived event type " + type_name +
                 " is already registered with a different schema (" +
                 std::to_string(existing.num_attributes()) + " vs " +
                 std::to_string(attrs.size()) + " attributes)",
             query.loc, label);
      }
      return;  // the registered schema wins, as in the translator
    }
    auto it = derived_.find(type_name);
    if (it != derived_.end()) {
      if (it->second.num_attributes() != static_cast<int>(attrs.size())) {
        Emit(DiagCode::kE106DeriveSchemaConflict,
             "query '" + label + "': derived event type " + type_name +
                 " is derived with a different schema elsewhere (" +
                 std::to_string(it->second.num_attributes()) + " vs " +
                 std::to_string(attrs.size()) + " attributes)",
             query.loc, label);
      }
      return;  // first deriver wins
    }
    derived_.emplace(type_name, Schema(std::move(attrs)));
  }

  // ----- Pass 4: optimizer preconditions (W203 note / W204 warning). -----

  void CheckWindows() {
    std::set<std::string> groupable;
    for (const WindowBounds& bounds : ExtractWindowBounds(model_)) {
      groupable.insert(bounds.context);
    }
    for (int ci = 0; ci < model_.num_contexts(); ++ci) {
      const ContextType& context = model_.context(ci);
      if (context.name == model_.default_context()) continue;
      // Mirror ExtractWindowBounds' initiator/terminator extraction.
      std::vector<int> initiators, terminators;
      bool self_loop = false;
      for (int qi = 0; qi < model_.num_queries(); ++qi) {
        const Query& query = model_.query(qi);
        bool starts = (query.action == ContextAction::kInitiate ||
                       query.action == ContextAction::kSwitch) &&
                      query.target_context == context.name;
        bool ends = (query.action == ContextAction::kTerminate &&
                     query.target_context == context.name) ||
                    (query.action == ContextAction::kSwitch &&
                     query.target_context != context.name &&
                     std::find(query.contexts.begin(), query.contexts.end(),
                               context.name) != query.contexts.end());
        if (starts && ends) self_loop = true;
        if (starts) initiators.push_back(qi);
        if (ends) terminators.push_back(qi);
      }
      if (self_loop) continue;       // C002 already reported
      if (initiators.empty()) continue;  // C001 territory
      std::string prefix = "context '" + context.name + "' ";
      // C006 runs before the groupable skip: a context whose terminator
      // accepts every initiating event is empty whether or not its bounds
      // form an orderable window (open at pos = 5 / close at pos <= 10 is
      // groupable — 5 < 10 — yet each window closes the moment it opens).
      std::string start_attr, end_attr;
      double start_key = 0, end_key = 0;
      BinaryOp start_op = BinaryOp::kGe, end_op = BinaryOp::kGe;
      bool init_ok = false, term_ok = false;
      if (initiators.size() == 1 && terminators.size() == 1) {
        const Query& init = model_.query(initiators[0]);
        const Query& term = model_.query(terminators[0]);
        init_ok =
            SingleThreshold(init.where, &start_attr, &start_key, &start_op);
        term_ok =
            SingleThreshold(term.where, &end_attr, &end_key, &end_op);
        // C006 yields to W204 on the same-attribute rising-threshold
        // shape: there the inverted-bounds warning explains the empty
        // window more precisely (and fires on exactly the models it
        // always did).
        bool w204_shape = init_ok && term_ok && start_attr == end_attr &&
                          IsRisingCrossing(start_op) &&
                          IsRisingCrossing(end_op);
        if (!w204_shape && ProvablyEmptyContext(init, term)) {
          Emit(DiagCode::kC006ProvablyEmptyContext,
               prefix + "is provably empty: every event satisfying the "
                        "initiating predicate of query '" +
                   QueryLabel(init, initiators[0]) +
                   "' also satisfies the terminating predicate of query '" +
                   QueryLabel(term, terminators[0]) +
                   "', so each window closes the moment it opens",
               context.loc, /*query=*/{}, context.name);
          continue;
        }
      }
      if (groupable.count(context.name) > 0) continue;
      if (terminators.empty()) {
        Note(prefix +
                 "has no terminating query; its windows never close and "
                 "cannot be grouped",
             context);
        continue;
      }
      if (initiators.size() > 1 || terminators.size() > 1) {
        Note(prefix + "has " + std::to_string(initiators.size()) +
                 " initiating and " + std::to_string(terminators.size()) +
                 " terminating queries; window grouping requires exactly one "
                 "of each",
             context);
        continue;
      }
      const Query& init = model_.query(initiators[0]);
      const Query& term = model_.query(terminators[0]);
      if (!init_ok || !term_ok) {
        const Query& bad = init_ok ? term : init;
        Note(prefix + "bounds are not compile-time orderable: the " +
                 (init_ok ? "terminating" : "initiating") +
                 " predicate of query '" +
                 QueryLabel(bad, init_ok ? terminators[0] : initiators[0]) +
                 "' is not a single threshold comparison",
             context);
        continue;
      }
      if (start_attr != end_attr) {
        Note(prefix + "bounds constrain different attributes (" + start_attr +
                 " vs " + end_attr + ") and are not compile-time orderable",
             context);
        continue;
      }
      // Orderability is only defined when both thresholds mark a rising
      // crossing (the monotone-rising-signal shape window grouping
      // targets). Opposite-direction pairs are hysteresis windows (e.g.
      // open on intensity >= 7, close on intensity <= 3) — valid, just
      // not groupable.
      if (!IsRisingCrossing(start_op) || !IsRisingCrossing(end_op)) {
        Note(prefix + "bounds are opposite-direction thresholds on " +
                 start_attr + " (a hysteresis window) and are not "
                 "compile-time orderable",
             context);
        continue;
      }
      // Same attribute, rising-crossing thresholds — ExtractWindowBounds
      // only skips this shape when the bounds are inverted (zero-width).
      std::ostringstream message;
      message << prefix << "window bounds are inverted: it opens at "
              << start_attr << " ~ " << start_key << " but closes at "
              << end_attr << " ~ " << end_key
              << " (the terminating threshold must exceed the initiating "
                 "one)";
      Emit(DiagCode::kW204InvertedWindowBounds, message.str(), context.loc,
           /*query=*/{}, context.name);
    }
  }

  void Note(const std::string& message, const ContextType& context) {
    Emit(DiagCode::kW203UngroupableWindow, message, context.loc, /*query=*/{},
         context.name);
  }

  const CaesarModel& model_;
  const AnalyzerOptions& options_;
  std::vector<Diagnostic> diags_;
  std::vector<QueryInfo> infos_;
  std::map<std::string, Schema> derived_;  // virtual schemas, name-keyed
  std::set<std::string> poisoned_;         // derived types that failed
};

}  // namespace

std::vector<Diagnostic> AnalyzeModel(const CaesarModel& model,
                                     const AnalyzerOptions& options) {
  return Analyzer(model, options).Run();
}

std::vector<Diagnostic> AnalyzeContextGraph(const CaesarModel& model) {
  std::vector<Diagnostic> diags;
  if (model.num_contexts() == 0) return diags;

  // C002: a SWITCH gated on its own target re-fires forever.
  for (int qi = 0; qi < model.num_queries(); ++qi) {
    const Query& query = model.query(qi);
    if (query.action != ContextAction::kSwitch) continue;
    std::string label = QueryLabel(query, qi);
    for (const std::string& gate : query.contexts) {
      if (gate != query.target_context) continue;
      diags.push_back(MakeDiag(
          DiagCode::kC002SelfLoopSwitch,
          "query '" + label + "': SWITCH CONTEXT " + query.target_context +
              " is gated on its own target context '" + gate +
              "' (self-loop switch edge)",
          query.loc, label, gate));
    }
  }

  // C001: no query ever INITIATEs or SWITCHes to the context.
  for (const ContextType& context : model.contexts()) {
    if (context.name == model.default_context()) continue;
    bool reachable = false;
    for (const Query& query : model.queries()) {
      if ((query.action == ContextAction::kInitiate ||
           query.action == ContextAction::kSwitch) &&
          query.target_context == context.name) {
        reachable = true;
        break;
      }
    }
    if (!reachable) {
      diags.push_back(MakeDiag(DiagCode::kC001UnreachableContext,
                               "context '" + context.name +
                                   "' is unreachable: no query INITIATEs or "
                                   "SWITCHes to it",
                               context.loc, /*query=*/{}, context.name));
    }
  }

  // Activation fixpoint: the default context is active; a deriving query
  // whose gate set intersects the active set activates its target.
  std::vector<char> active(model.num_contexts(), 0);
  int default_index = model.ContextIndex(model.default_context());
  if (default_index >= 0) active[default_index] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Query& query : model.queries()) {
      if (query.action != ContextAction::kInitiate &&
          query.action != ContextAction::kSwitch) {
        continue;
      }
      int target = model.ContextIndex(query.target_context);
      if (target < 0 || active[target]) continue;
      for (const std::string& gate : query.contexts) {
        int gi = model.ContextIndex(gate);
        if (gi >= 0 && active[gi]) {
          active[target] = 1;
          changed = true;
          break;
        }
      }
    }
  }

  // C004: every gate of the query is provably never active.
  for (int qi = 0; qi < model.num_queries(); ++qi) {
    const Query& query = model.query(qi);
    if (query.contexts.empty()) continue;
    std::string label = QueryLabel(query, qi);
    bool any_known = false;
    bool any_active = false;
    std::string gates;
    for (const std::string& gate : query.contexts) {
      int gi = model.ContextIndex(gate);
      if (gi < 0) continue;
      any_known = true;
      if (active[gi]) any_active = true;
      if (!gates.empty()) gates += ", ";
      gates += gate;
    }
    if (!any_known || any_active) continue;
    diags.push_back(MakeDiag(
        DiagCode::kC004DeadQuery,
        "query '" + label + "' can never fire: none of its contexts (" +
            gates + ") is ever activated",
        query.loc, label));
  }

  // C003: a later SWITCH whose pattern and predicate are subsumed by an
  // earlier SWITCH to the same target never changes the outcome.
  for (int qj = 0; qj < model.num_queries(); ++qj) {
    const Query& later = model.query(qj);
    if (later.action != ContextAction::kSwitch) continue;
    if (!later.pattern.has_value() ||
        later.pattern->kind != PatternSpec::Kind::kEvent) {
      continue;
    }
    for (int qi = 0; qi < qj; ++qi) {
      const Query& earlier = model.query(qi);
      if (earlier.action != ContextAction::kSwitch ||
          earlier.target_context != later.target_context) {
        continue;
      }
      if (!earlier.pattern.has_value() ||
          earlier.pattern->kind != PatternSpec::Kind::kEvent ||
          earlier.pattern->items[0].event_type !=
              later.pattern->items[0].event_type) {
        continue;
      }
      // The earlier query must be gated wherever the later one is...
      bool gates_covered = true;
      for (const std::string& gate : later.contexts) {
        if (std::find(earlier.contexts.begin(), earlier.contexts.end(),
                      gate) == earlier.contexts.end()) {
          gates_covered = false;
          break;
        }
      }
      if (!gates_covered) continue;
      // ...and fire whenever the later one fires (predicate subsumption).
      if (!Implies(PredicateSummary::FromExpr(later.where),
                   PredicateSummary::FromExpr(earlier.where))) {
        continue;
      }
      std::string later_label = QueryLabel(later, qj);
      diags.push_back(MakeDiag(
          DiagCode::kC003ShadowedSwitchEdge,
          "query '" + later_label + "': SWITCH CONTEXT " +
              later.target_context + " is shadowed by query '" +
              QueryLabel(earlier, qi) +
              "', which switches there on a weaker predicate over the same "
              "pattern",
          later.loc, later_label, later.target_context));
      break;
    }
  }

  return diags;
}

}  // namespace caesar
