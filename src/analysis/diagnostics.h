// The diagnostics engine behind caesar-lint (and the coded error paths of
// the parser, ingest, and CSV reader): stable diagnostic codes, severities,
// source spans, and deterministic renderers.
//
// Code ranges:
//   C0xx  context graph      (reachability, switch edges, dead workloads)
//   E1xx  expression / type  (schemas, attribute resolution, clause shape)
//   W2xx  windows / grouping (satisfiability, optimizer preconditions)
//   P3xx  plan               (shapes the planner cannot realize)
//   I4xx  ingest / IO        (quarantine reasons, CSV stream errors)
//
// Codes are append-only: a released code never changes meaning, so tools
// and golden files can match on them. Rendering is deterministic — equal
// diagnostic lists produce byte-identical human, JSON, and SARIF output.

#ifndef CAESAR_ANALYSIS_DIAGNOSTICS_H_
#define CAESAR_ANALYSIS_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/source_loc.h"

namespace caesar {

enum class DiagSeverity : int8_t { kError, kWarning, kNote };

const char* DiagSeverityName(DiagSeverity severity);  // "error" / ...

enum class DiagCode : int16_t {
  // C0xx — context graph.
  kC001UnreachableContext,   // no INITIATE/SWITCH targets a non-default ctx
  kC002SelfLoopSwitch,       // SWITCH gated on its own target context
  kC003ShadowedSwitchEdge,   // an earlier switch provably fires first
  kC004DeadQuery,            // gated only on never-activatable contexts
  kC005UnknownContext,       // context name not declared
  kC006ProvablyEmptyContext, // every initiating event also terminates

  // E1xx — expressions and types.
  kE101UnknownEventType,     // pattern references an unregistered type
  kE102UnknownAttribute,     // attribute/variable does not resolve
  kE103TypeMismatch,         // operand types incompatible
  kE104NonBooleanPredicate,  // WHERE/HAVING cannot be true (string result)
  kE105BadAggregate,         // aggregate clause shape/attribute invalid
  kE106DeriveSchemaConflict, // DERIVE re-registers a type with new schema
  kE107MissingPattern,       // query without (non-empty) PATTERN
  kE108MissingDeriveOrAction,// processing query without DERIVE
  kE109NoPositiveItem,       // SEQ made only of negated positions

  // W2xx — windows and grouping.
  kW201ContradictoryPredicate, // conjunction has an empty interval
  kW202UnsatisfiableSeq,       // WITHIN too small for the position count
  kW203UngroupableWindow,      // bounds not compile-time orderable
  kW204InvertedWindowBounds,   // terminator threshold <= initiator threshold
  kW205ConstantPredicate,      // predicate folds to a constant
  kW206CrossPositionContradiction, // SEQ can never complete (absint)
  kW207SubsumedGuard,          // guard implied by earlier ones on the run

  // P3xx — plan.
  kP301TooManyContexts,        // exceeds the context bit-vector width
  kP302TrailingNegation,       // SEQ(..., NOT X) has no planner support
  kP303MultiNegatedPredicate,  // predicate spans several negated variables
  kP304PlanTranslation,        // TranslateModel failed for another reason
  kP305CompiledFallback,       // pattern too wide for the automaton compiler

  // I4xx — ingest and IO (shared vocabulary with QuarantineReason and the
  // tolerant CSV reader).
  kI401OutOfOrder,
  kI402LateBeyondSlack,
  kI403UnknownType,
  kI404NegativeTime,
  kI405InvertedInterval,
  kI406MalformedCsv,
  // Recovery degradation (durability/): surfaced through the recovered
  // engine's StatisticsReport so a lossy restart is reported, not silent.
  kI410TornWalTail,          // incomplete final WAL record truncated
  kI411CheckpointCrcMismatch,// checkpoint failed its checksum, skipped
  kI412WalRecordCrcMismatch, // mid-log record failed its checksum
  kI413StaleWalRecord,       // record at or below the recovery horizon
  // Server admission (server/): the coded rejections caesard answers on
  // the wire. Clients match on the code, never the message.
  kI420Backpressure,         // tenant's pending buffer full; retry later
  kI421UnknownTenant,        // request names a tenant that is not registered
  kI422DuplicateTenant,      // register for a name that is already live
  kI423BadFrame,             // unparseable frame/JSON/request shape
  kI424AdmissionRejected,    // model failed parse or strict lint gate
};

// Stable printable code, e.g. "C001".
const char* DiagCodeName(DiagCode code);

// Short human title for rule catalogs (SARIF rules, docs).
const char* DiagCodeTitle(DiagCode code);

// The severity the analyzer assigns by default.
DiagSeverity DiagCodeDefaultSeverity(DiagCode code);

// One diagnostic. `source` names the file/stream the span refers to (empty
// for programmatic models); `query`/`context` name the offending model
// elements when applicable.
struct Diagnostic {
  DiagCode code = DiagCode::kC001UnreachableContext;
  DiagSeverity severity = DiagSeverity::kError;
  std::string source;
  SourceLoc loc;
  std::string message;
  std::string query;
  std::string context;
};

// Convenience constructor applying the code's default severity.
Diagnostic MakeDiag(DiagCode code, std::string message,
                    SourceLoc loc = {}, std::string query = {},
                    std::string context = {});

// "file:3:14: error[C001]: message" — the source/span prefix is omitted
// piecewise when unknown.
std::string FormatDiagnostic(const Diagnostic& diag);

// Any error-severity entry?
bool HasErrors(const std::vector<Diagnostic>& diags);
// Any error- or warning-severity entry? (The lint definition of "not
// clean"; notes are advisory.)
bool HasErrorsOrWarnings(const std::vector<Diagnostic>& diags);

// Deterministic order: (source, line, col, code, message, query).
void SortDiagnostics(std::vector<Diagnostic>* diags);

// Deterministic JSON document (see tools/check_lint_schema.py for the
// schema): {"tool":"caesar_lint","version":1,"diagnostics":[...]}.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags);

// Deterministic SARIF 2.1.0 document with one run and one rule per code
// present. No timestamps or absolute paths, so repeat runs are
// byte-identical.
std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags);

}  // namespace caesar

#endif  // CAESAR_ANALYSIS_DIAGNOSTICS_H_
