// Graphviz (DOT) export of CAESAR models and plans.
//
// ModelToDot renders the context transition network of Fig. 1: context
// types as nodes (the default context doubled-circled), context deriving
// queries as labeled edges (initiate / switch / terminate), and each
// context's processing workload listed beneath its node.
//
// PlanToDot renders the executable plan: one cluster per query chain with
// the operators bottom-up (Fig. 6).

#ifndef CAESAR_IO_DOT_H_
#define CAESAR_IO_DOT_H_

#include <string>

#include "plan/plan.h"
#include "query/model.h"

namespace caesar {

std::string ModelToDot(const CaesarModel& model);
std::string PlanToDot(const ExecutablePlan& plan);

}  // namespace caesar

#endif  // CAESAR_IO_DOT_H_
