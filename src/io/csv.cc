#include "io/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <queue>
#include <sstream>

#include "analysis/diagnostics.h"

namespace caesar {

namespace {

// Escapes a string cell: quotes when it contains a comma, quote or newline.
std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += "\"";
  return escaped;
}

// Splits one CSV line honoring quoted cells.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  if (quoted) return Status::ParseError("unterminated quote in CSV line");
  cells.push_back(std::move(cell));
  return cells;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

Result<ValueType> ParseValueType(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  return Status::ParseError("unknown attribute type: " + name);
}

// "<stream>:<line>: error[I406]: <message>" — every reader error carries
// its location plus the malformed-CSV diagnostic code (the same I4xx
// vocabulary the ingest quarantine uses; analysis/diagnostics.h).
Status AtLine(const std::string& stream_name, int64_t line, StatusCode code,
              const std::string& message) {
  return Status(code, stream_name + ":" + std::to_string(line) +
                          ": error[" +
                          DiagCodeName(DiagCode::kI406MalformedCsv) + "]: " +
                          message);
}

// Non-throwing full-string number parses (library code never throws; the
// std::sto* family does on malformed cells).
bool ParseInt64Cell(const std::string& cell, int64_t* out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(cell.c_str(), &end, 10);
  if (errno == ERANGE || end != cell.c_str() + cell.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDoubleCell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(cell.c_str(), &end);
  if (errno == ERANGE || end != cell.c_str() + cell.size()) return false;
  *out = value;
  return true;
}

}  // namespace

Result<std::string> WriteEventsCsv(const EventBatch& events,
                                   const TypeRegistry& registry) {
  if (events.empty()) {
    return Status::InvalidArgument("cannot serialize an empty batch");
  }
  TypeId type_id = events.front()->type_id();
  const EventType& type = registry.type(type_id);
  std::ostringstream os;
  os << "# type: " << type.name << "\n# attrs: ";
  for (int i = 0; i < type.schema.num_attributes(); ++i) {
    if (i > 0) os << ", ";
    os << type.schema.attribute(i).name << ":"
       << ValueTypeName(type.schema.attribute(i).type);
  }
  os << "\ntime";
  for (int i = 0; i < type.schema.num_attributes(); ++i) {
    os << "," << type.schema.attribute(i).name;
  }
  os << "\n";
  for (const EventPtr& event : events) {
    if (event->type_id() != type_id) {
      return Status::InvalidArgument(
          "mixed event types in one CSV batch (split by type first)");
    }
    os << event->time();
    for (int i = 0; i < event->num_values(); ++i) {
      os << ",";
      const Value& value = event->value(i);
      switch (value.type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt:
          os << value.AsInt();
          break;
        case ValueType::kDouble: {
          char buffer[64];
          std::snprintf(buffer, sizeof(buffer), "%.17g", value.AsDouble());
          os << buffer;
          break;
        }
        case ValueType::kString:
          os << EscapeCell(value.AsString());
          break;
      }
    }
    os << "\n";
  }
  return os.str();
}

CsvParseResult ReadEventsCsvTolerant(const std::string& text,
                                     TypeRegistry* registry,
                                     const std::string& stream_name) {
  CsvParseResult result;
  std::istringstream is(text);
  std::string line;
  auto fail = [&](int64_t line_no, StatusCode code,
                  const std::string& message) -> CsvParseResult& {
    result.status = AtLine(stream_name, line_no, code, message);
    result.error_line = line_no;
    result.rows_parsed = static_cast<int64_t>(result.events.size());
    return result;
  };

  // Header line 1: "# type: <name>".
  if (!std::getline(is, line) || line.rfind("# type: ", 0) != 0) {
    return fail(1, StatusCode::kParseError, "missing '# type:' header");
  }
  std::string type_name = Trim(line.substr(8));

  // Header line 2: "# attrs: name:type, ...".
  if (!std::getline(is, line) || line.rfind("# attrs: ", 0) != 0) {
    return fail(2, StatusCode::kParseError, "missing '# attrs:' header");
  }
  std::vector<Attribute> attributes;
  {
    std::istringstream attrs(line.substr(9));
    std::string item;
    while (std::getline(attrs, item, ',')) {
      item = Trim(item);
      size_t colon = item.rfind(':');
      if (colon == std::string::npos) {
        return fail(2, StatusCode::kParseError,
                    "malformed attribute spec: " + item);
      }
      Result<ValueType> type = ParseValueType(Trim(item.substr(colon + 1)));
      if (!type.ok()) {
        return fail(2, StatusCode::kParseError, type.status().message());
      }
      attributes.push_back({Trim(item.substr(0, colon)), type.value()});
    }
  }
  TypeId type_id = registry->RegisterOrGet(type_name, attributes);
  const Schema& schema = registry->type(type_id).schema;
  if (schema.num_attributes() != static_cast<int>(attributes.size())) {
    return fail(2, StatusCode::kFailedPrecondition,
                "type " + type_name +
                    " already registered with a different schema");
  }

  // Header line 3: column names (ignored beyond a sanity check).
  if (!std::getline(is, line) || line.rfind("time", 0) != 0) {
    return fail(3, StatusCode::kParseError, "missing column header");
  }

  int64_t line_no = 3;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    int64_t row_line = line_no;  // first physical line of this row
    // A quoted cell may span physical lines: keep appending while the
    // number of quote characters is odd (escaped quotes contribute two).
    bool truncated = false;
    while (std::count(line.begin(), line.end(), '"') % 2 == 1) {
      std::string more;
      if (!std::getline(is, more)) {
        truncated = true;
        break;
      }
      ++line_no;
      line += "\n" + more;
    }
    Result<std::vector<std::string>> split = SplitCsvLine(line);
    if (!split.ok()) {
      std::string message = split.status().message() + " (row starts at line " +
                            std::to_string(row_line) + ")";
      if (truncated) message += "; input truncated mid-quote?";
      return fail(line_no, StatusCode::kParseError, message);
    }
    const std::vector<std::string>& cells = split.value();
    if (cells.size() != attributes.size() + 1) {
      return fail(row_line, StatusCode::kParseError,
                  "expected " + std::to_string(attributes.size() + 1) +
                      " cells, got " + std::to_string(cells.size()));
    }
    Timestamp time = 0;
    std::vector<Value> values;
    values.reserve(attributes.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      const std::string& cell = cells[i];
      if (i == 0) {
        int64_t parsed = 0;
        if (!ParseInt64Cell(cell, &parsed)) {
          return fail(row_line, StatusCode::kParseError,
                      "invalid time stamp '" + cell + "'");
        }
        time = parsed;
        continue;
      }
      const Attribute& attribute = attributes[i - 1];
      switch (attribute.type) {
        case ValueType::kInt: {
          if (cell.empty()) {
            values.push_back(Value());
            break;
          }
          int64_t parsed = 0;
          if (!ParseInt64Cell(cell, &parsed)) {
            return fail(row_line, StatusCode::kParseError,
                        "invalid int value '" + cell + "' for attribute '" +
                            attribute.name + "'");
          }
          values.push_back(Value(parsed));
          break;
        }
        case ValueType::kDouble: {
          if (cell.empty()) {
            values.push_back(Value());
            break;
          }
          double parsed = 0.0;
          if (!ParseDoubleCell(cell, &parsed)) {
            return fail(row_line, StatusCode::kParseError,
                        "invalid double value '" + cell + "' for attribute '" +
                            attribute.name + "'");
          }
          values.push_back(Value(parsed));
          break;
        }
        default:
          values.push_back(Value(cell));
          break;
      }
    }
    result.events.push_back(MakeEvent(type_id, time, std::move(values)));
  }
  result.rows_parsed = static_cast<int64_t>(result.events.size());
  return result;
}

Result<EventBatch> ReadEventsCsv(const std::string& text,
                                 TypeRegistry* registry,
                                 const std::string& stream_name) {
  CsvParseResult result = ReadEventsCsvTolerant(text, registry, stream_name);
  if (!result.status.ok()) return result.status;
  return std::move(result.events);
}

Status WriteEventsCsvFile(const std::string& path, const EventBatch& events,
                          const TypeRegistry& registry) {
  CAESAR_ASSIGN_OR_RETURN(std::string text, WriteEventsCsv(events, registry));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << text;
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed: " + path);
}

Result<EventBatch> ReadEventsCsvFile(const std::string& path,
                                     TypeRegistry* registry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadEventsCsv(buffer.str(), registry, path);
}

EventBatch MergeByTime(std::vector<EventBatch> batches) {
  // K-way merge, stable across batches.
  struct Cursor {
    const EventBatch* batch;
    size_t index;
    size_t order;  // batch order for stability
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    Timestamp ta = (*a.batch)[a.index]->time();
    Timestamp tb = (*b.batch)[b.index]->time();
    if (ta != tb) return ta > tb;
    return a.order > b.order;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(
      later);
  size_t total = 0;
  for (size_t b = 0; b < batches.size(); ++b) {
    if (!batches[b].empty()) heap.push({&batches[b], 0, b});
    total += batches[b].size();
  }
  EventBatch merged;
  merged.reserve(total);
  while (!heap.empty()) {
    Cursor cursor = heap.top();
    heap.pop();
    merged.push_back((*cursor.batch)[cursor.index]);
    if (cursor.index + 1 < cursor.batch->size()) {
      heap.push({cursor.batch, cursor.index + 1, cursor.order});
    }
  }
  return merged;
}

}  // namespace caesar
