// CSV import/export of event streams.
//
// Streams are exchanged in a simple typed CSV dialect:
//
//   # type: PositionReport
//   # attrs: vid:int, speed:int, xway:int, ...
//   time,vid,speed,xway,...
//   0,103,57,0,...
//
// One file holds events of one type; WriteEventsCsv/ReadEventsCsv round-trip
// losslessly for int/double/string attributes. Multi-type streams are split
// across files by the caller (one per type) and merged with MergeByTime.

#ifndef CAESAR_IO_CSV_H_
#define CAESAR_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"

namespace caesar {

// Serializes `events` (all of one type) to CSV text.
Result<std::string> WriteEventsCsv(const EventBatch& events,
                                   const TypeRegistry& registry);

// Outcome of a tolerant CSV parse: every row parsed before the first error
// is kept, so a corrupt tail does not discard a good prefix. Error messages
// are prefixed "<stream_name>:<1-based line>:".
struct CsvParseResult {
  EventBatch events;       // rows parsed before the first error (all if ok)
  Status status;           // Ok(), or the first error with its location
  int64_t rows_parsed = 0;  // == events.size()
  int64_t error_line = 0;   // 1-based physical line of the error (0 = none)
};

// Parses CSV text produced by WriteEventsCsv, keeping the partial batch on
// error. `stream_name` labels error messages (e.g. the file path).
CsvParseResult ReadEventsCsvTolerant(const std::string& text,
                                     TypeRegistry* registry,
                                     const std::string& stream_name = "<csv>");

// Parses CSV text produced by WriteEventsCsv. The event type is registered
// in `registry` if absent (with the schema from the header). All-or-nothing
// wrapper over ReadEventsCsvTolerant.
Result<EventBatch> ReadEventsCsv(const std::string& text,
                                 TypeRegistry* registry,
                                 const std::string& stream_name = "<csv>");

// Writes `events` to `path`; all events must share one type.
Status WriteEventsCsvFile(const std::string& path, const EventBatch& events,
                          const TypeRegistry& registry);

// Reads a CSV stream file.
Result<EventBatch> ReadEventsCsvFile(const std::string& path,
                                     TypeRegistry* registry);

// Merges time-ordered batches into one time-ordered stream (stable).
EventBatch MergeByTime(std::vector<EventBatch> batches);

}  // namespace caesar

#endif  // CAESAR_IO_CSV_H_
