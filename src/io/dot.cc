#include "io/dot.h"

#include <sstream>

namespace caesar {

namespace {

std::string EscapeLabel(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '"' || c == '\\') escaped += '\\';
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped += c;
  }
  return escaped;
}

}  // namespace

std::string ModelToDot(const CaesarModel& model) {
  std::ostringstream os;
  os << "digraph caesar_model {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  for (int c = 0; c < model.num_contexts(); ++c) {
    const ContextType& context = model.context(c);
    std::ostringstream label;
    label << context.name;
    if (!context.processing_queries.empty()) {
      label << "\n";
      for (size_t q = 0; q < context.processing_queries.size(); ++q) {
        if (q > 0) label << ", ";
        label << model.query(context.processing_queries[q]).name;
      }
    }
    os << "  \"" << context.name << "\" [label=\""
       << EscapeLabel(label.str()) << "\"";
    if (context.name == model.default_context()) {
      os << ", peripheries=2";
    }
    os << "];\n";
  }
  for (int qi = 0; qi < model.num_queries(); ++qi) {
    const Query& query = model.query(qi);
    if (query.action == ContextAction::kNone) continue;
    std::string label = query.name;
    if (query.where != nullptr) {
      label += "\nif " + query.where->ToString();
    }
    for (const std::string& source : query.contexts) {
      switch (query.action) {
        case ContextAction::kInitiate:
          os << "  \"" << source << "\" -> \"" << query.target_context
             << "\" [style=dashed, label=\"" << EscapeLabel(label)
             << "\"];\n";
          break;
        case ContextAction::kSwitch:
          os << "  \"" << source << "\" -> \"" << query.target_context
             << "\" [label=\"" << EscapeLabel(label) << "\"];\n";
          break;
        case ContextAction::kTerminate:
          os << "  \"" << source << "\" -> \"" << model.default_context()
             << "\" [style=dotted, label=\"" << EscapeLabel(label)
             << "\"];\n";
          break;
        case ContextAction::kNone:
          break;
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string PlanToDot(const ExecutablePlan& plan) {
  std::ostringstream os;
  os << "digraph caesar_plan {\n  rankdir=BT;\n  node [shape=box];\n";
  int cluster = 0;
  auto emit = [&](const CompiledQuery& query, const char* phase) {
    os << "  subgraph cluster_" << cluster++ << " {\n    label=\""
       << EscapeLabel(query.name) << " (" << phase << ")\";\n";
    std::string previous;
    for (size_t o = 0; o < query.chain.ops.size(); ++o) {
      std::string node =
          "q" + std::to_string(cluster) + "_op" + std::to_string(o);
      os << "    " << node << " [label=\""
         << EscapeLabel(query.chain.ops[o]->DebugString()) << "\"];\n";
      if (!previous.empty()) os << "    " << previous << " -> " << node << ";\n";
      previous = node;
    }
    os << "  }\n";
  };
  for (const CompiledQuery& query : plan.deriving) emit(query, "deriving");
  for (const CompiledQuery& query : plan.processing) emit(query, "processing");
  os << "}\n";
  return os.str();
}

}  // namespace caesar
