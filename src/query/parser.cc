#include "query/parser.h"

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "expr/lexer.h"
#include "expr/parser.h"

namespace caesar {

namespace {

// Keywords that begin a clause; an identifier list (e.g. CONTEXT names)
// stops before these.
bool IsClauseKeyword(const Token& token) {
  static constexpr const char* kKeywords[] = {
      "QUERY",   "INITIATE", "SWITCH",  "TERMINATE", "DERIVE",
      "PATTERN", "WHERE",    "CONTEXT", "CONTEXTS",  "PARTITION",
      "DEFAULT", "TYPE"};
  for (const char* keyword : kKeywords) {
    if (token.IsKeyword(keyword)) return true;
  }
  return false;
}

class ModelParser {
 public:
  ModelParser(const std::vector<Token>& tokens, size_t pos,
              std::string source_name)
      : tokens_(tokens), pos_(pos), source_(std::move(source_name)) {}


  // Parses one query: a sequence of clauses up to ';' or end.
  Result<Query> ParseQueryBody() {
    Query query;
    query.loc = Peek().loc;
    if (Peek().IsKeyword("QUERY")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(query.name, ExpectIdentifier("query name"));
    }
    bool any_clause = false;
    while (true) {
      const Token& token = Peek();
      if (token.kind == TokenKind::kEnd ||
          token.kind == TokenKind::kSemicolon) {
        break;
      }
      if (token.IsKeyword("INITIATE") || token.IsKeyword("SWITCH") ||
          token.IsKeyword("TERMINATE")) {
        if (query.action != ContextAction::kNone) {
          return Error("duplicate context action clause");
        }
        query.action = token.IsKeyword("INITIATE") ? ContextAction::kInitiate
                       : token.IsKeyword("SWITCH") ? ContextAction::kSwitch
                                                   : ContextAction::kTerminate;
        ++pos_;
        if (!Peek().IsKeyword("CONTEXT")) {
          return Error("expected CONTEXT after context action");
        }
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(query.target_context,
                                ExpectIdentifier("context name"));
        any_clause = true;
      } else if (token.IsKeyword("DERIVE")) {
        if (query.derive.has_value()) return Error("duplicate DERIVE clause");
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(DeriveSpec derive, ParseDerive());
        query.derive = std::move(derive);
        any_clause = true;
      } else if (token.IsKeyword("PATTERN")) {
        if (query.pattern.has_value()) {
          return Error("duplicate PATTERN clause");
        }
        query.pattern_loc = token.loc;
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(PatternSpec pattern, ParsePattern());
        query.pattern = std::move(pattern);
        any_clause = true;
      } else if (token.IsKeyword("WHERE")) {
        if (query.where != nullptr) return Error("duplicate WHERE clause");
        query.where_loc = token.loc;
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(query.where, ParseClauseExpr());
        any_clause = true;
      } else if (token.IsKeyword("CONTEXT")) {
        if (!query.contexts.empty()) {
          return Error("duplicate CONTEXT clause");
        }
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(query.contexts,
                                ParseIdentifierList("context name"));
        any_clause = true;
      } else {
        return Error("unexpected token in query");
      }
    }
    if (!any_clause) return Error("empty query");
    return query;
  }

  // DERIVE EventType(expr (AS name)?, ...)
  Result<DeriveSpec> ParseDerive() {
    DeriveSpec derive;
    CAESAR_ASSIGN_OR_RETURN(derive.event_type,
                            ExpectIdentifier("derived event type"));
    if (Peek().kind != TokenKind::kLParen) {
      return Error("expected '(' after derived event type");
    }
    ++pos_;
    if (Peek().kind == TokenKind::kRParen) {
      ++pos_;
      return derive;
    }
    while (true) {
      CAESAR_ASSIGN_OR_RETURN(ExprPtr arg, ParseClauseExpr());
      std::string attr_name;
      if (Peek().IsKeyword("AS")) {
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(attr_name, ExpectIdentifier("attribute name"));
      }
      derive.args.push_back(std::move(arg));
      derive.attr_names.push_back(std::move(attr_name));
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      if (Peek().kind == TokenKind::kRParen) {
        ++pos_;
        break;
      }
      return Error("expected ',' or ')' in DERIVE argument list");
    }
    return derive;
  }

  // Patt := NOT? EventType Var? | SEQ( (Patt ,?)+ ) | Aggregate,
  // optionally followed by WITHIN <ticks>. Nested SEQs flatten.
  //
  // Aggregate := AGGREGATE EventType Var? WINDOW <ticks>
  //              (GROUP BY attr (, attr)*)?
  //              COMPUTE func(attr?) AS name (, func(attr?) AS name)*
  //              (HAVING expr)?
  Result<PatternSpec> ParsePattern() {
    PatternSpec pattern;
    if (Peek().IsKeyword("AGGREGATE")) {
      ++pos_;
      return ParseAggregate();
    }
    CAESAR_RETURN_IF_ERROR(ParsePatternInto(&pattern));
    if (Peek().IsKeyword("WITHIN")) {
      ++pos_;
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer after WITHIN");
      }
      pattern.within = Peek().int_value;
      ++pos_;
    }
    return pattern;
  }

  Result<PatternSpec> ParseAggregate() {
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kAggregate;
    PatternItem item;
    CAESAR_ASSIGN_OR_RETURN(item.event_type, ExpectIdentifier("event type"));
    if (Peek().kind == TokenKind::kIdentifier && !IsClauseKeyword(Peek()) &&
        !Peek().IsKeyword("WINDOW")) {
      item.variable = Peek().text;
      ++pos_;
    }
    pattern.items.push_back(std::move(item));
    if (!Peek().IsKeyword("WINDOW")) {
      return Error("expected WINDOW in aggregate pattern");
    }
    ++pos_;
    if (Peek().kind != TokenKind::kIntLiteral) {
      return Error("expected integer window length");
    }
    pattern.window_length = Peek().int_value;
    ++pos_;
    if (Peek().IsKeyword("GROUP")) {
      ++pos_;
      if (!Peek().IsKeyword("BY")) return Error("expected BY after GROUP");
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(pattern.group_by,
                              ParseIdentifierList("group-by attribute"));
    }
    if (!Peek().IsKeyword("COMPUTE")) {
      return Error("expected COMPUTE in aggregate pattern");
    }
    ++pos_;
    while (true) {
      AggregateSpec spec;
      CAESAR_ASSIGN_OR_RETURN(std::string func,
                              ExpectIdentifier("aggregate function"));
      if (func == "count") {
        spec.func = AggregateFunc::kCount;
      } else if (func == "sum") {
        spec.func = AggregateFunc::kSum;
      } else if (func == "avg") {
        spec.func = AggregateFunc::kAvg;
      } else if (func == "min") {
        spec.func = AggregateFunc::kMin;
      } else if (func == "max") {
        spec.func = AggregateFunc::kMax;
      } else {
        return Error("unknown aggregate function " + func);
      }
      if (Peek().kind != TokenKind::kLParen) {
        return Error("expected '(' after aggregate function");
      }
      ++pos_;
      if (Peek().kind == TokenKind::kIdentifier) {
        spec.attribute = Peek().text;
        ++pos_;
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' in aggregate");
      }
      ++pos_;
      if (!Peek().IsKeyword("AS")) {
        return Error("expected AS <name> after aggregate");
      }
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(spec.name, ExpectIdentifier("aggregate name"));
      pattern.aggregates.push_back(std::move(spec));
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("HAVING")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(pattern.having, ParseClauseExpr());
    }
    return pattern;
  }

  // CONTEXTS a, b, c DEFAULT a
  Status ParseContextsDecl(CaesarModel* model) {
    while (true) {
      SourceLoc loc = Peek().loc;
      CAESAR_ASSIGN_OR_RETURN(std::string name,
                              ExpectIdentifier("context name"));
      CAESAR_RETURN_IF_ERROR(model->AddContext(name, loc));
      if (Peek().kind != TokenKind::kComma) break;
      ++pos_;
    }
    if (Peek().IsKeyword("DEFAULT")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(std::string default_name,
                              ExpectIdentifier("default context"));
      CAESAR_RETURN_IF_ERROR(model->SetDefaultContext(default_name));
    }
    return Status::Ok();
  }

  // PARTITION BY a, b, c
  Status ParsePartitionDecl(CaesarModel* model) {
    if (!Peek().IsKeyword("BY")) {
      return Error("expected BY after PARTITION");
    }
    ++pos_;
    CAESAR_ASSIGN_OR_RETURN(std::vector<std::string> attrs,
                            ParseIdentifierList("attribute name"));
    model->SetPartitionBy(std::move(attrs));
    return Status::Ok();
  }

  // TYPE Name(attr int, attr double, attr string); registers the schema so
  // model files are self-contained. Redeclaring an identical schema is a
  // no-op; a conflicting one is an error.
  Status ParseTypeDecl(TypeRegistry* registry) {
    CAESAR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("type name"));
    if (Peek().kind != TokenKind::kLParen) {
      return Error("expected '(' after type name");
    }
    ++pos_;
    std::vector<Attribute> attributes;
    if (Peek().kind == TokenKind::kRParen) {
      ++pos_;
    } else {
      while (true) {
        Attribute attr;
        CAESAR_ASSIGN_OR_RETURN(attr.name,
                                ExpectIdentifier("attribute name"));
        SourceLoc type_loc = Peek().loc;
        CAESAR_ASSIGN_OR_RETURN(std::string type_name,
                                ExpectIdentifier("attribute type"));
        if (type_name == "int") {
          attr.type = ValueType::kInt;
        } else if (type_name == "double") {
          attr.type = ValueType::kDouble;
        } else if (type_name == "string") {
          attr.type = ValueType::kString;
        } else {
          return Status::ParseError(
              source_ + ":" + type_loc.ToString() +
              ": unknown attribute type '" + type_name +
              "' (expected int, double, or string)");
        }
        attributes.push_back(std::move(attr));
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        if (Peek().kind == TokenKind::kRParen) {
          ++pos_;
          break;
        }
        return Error("expected ',' or ')' in TYPE attribute list");
      }
    }
    TypeId existing = registry->Lookup(name);
    if (existing != kInvalidTypeId) {
      const Schema& schema = registry->type(existing).schema;
      bool same = schema.num_attributes() == static_cast<int>(attributes.size());
      for (size_t i = 0; same && i < attributes.size(); ++i) {
        const Attribute& have = schema.attribute(static_cast<int>(i));
        same = have.name == attributes[i].name &&
               have.type == attributes[i].type;
      }
      if (!same) {
        return Error("TYPE " + name +
                     " conflicts with an existing schema of the same name");
      }
      return Status::Ok();
    }
    return registry->Register(name, std::move(attributes)).status();
  }

  const Token& Peek() const { return tokens_[pos_]; }

  void SkipSemicolons() {
    while (Peek().kind == TokenKind::kSemicolon) ++pos_;
  }

  // Parses the whole model body (declarations and queries) into `model`.
  Status ParseModelBody(CaesarModel* model) {
    SkipSemicolons();
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().IsKeyword("CONTEXTS")) {
        ++pos_;
        CAESAR_RETURN_IF_ERROR(ParseContextsDecl(model));
      } else if (Peek().IsKeyword("TYPE")) {
        ++pos_;
        CAESAR_RETURN_IF_ERROR(ParseTypeDecl(model->registry()));
      } else if (Peek().IsKeyword("PARTITION")) {
        ++pos_;
        CAESAR_RETURN_IF_ERROR(ParsePartitionDecl(model));
      } else {
        CAESAR_ASSIGN_OR_RETURN(Query query, ParseQueryBody());
        CAESAR_RETURN_IF_ERROR(model->AddQuery(std::move(query)).status());
      }
      if (Peek().kind != TokenKind::kSemicolon &&
          Peek().kind != TokenKind::kEnd) {
        return Error("expected ';'");
      }
      SkipSemicolons();
    }
    return Status::Ok();
  }

 private:
  Status ParsePatternInto(PatternSpec* pattern) {
    if (Peek().IsKeyword("SEQ")) {
      ++pos_;
      pattern->kind = PatternSpec::Kind::kSeq;
      if (Peek().kind != TokenKind::kLParen) {
        return Error("expected '(' after SEQ");
      }
      ++pos_;
      while (true) {
        CAESAR_RETURN_IF_ERROR(ParsePatternInto(pattern));
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        if (Peek().kind == TokenKind::kRParen) {
          ++pos_;
          break;
        }
        return Error("expected ',' or ')' in SEQ");
      }
      return Status::Ok();
    }
    PatternItem item;
    if (Peek().IsKeyword("NOT")) {
      item.negated = true;
      ++pos_;
    }
    if (Peek().IsKeyword("SEQ")) {
      return Error("NOT SEQ(...) is not supported");
    }
    CAESAR_ASSIGN_OR_RETURN(item.event_type, ExpectIdentifier("event type"));
    // Optional variable: an identifier that is not a clause keyword.
    if (Peek().kind == TokenKind::kIdentifier && !IsClauseKeyword(Peek()) &&
        !Peek().IsKeyword("AS") && !Peek().IsKeyword("WITHIN")) {
      item.variable = Peek().text;
      ++pos_;
    }
    pattern->items.push_back(std::move(item));
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  // Expression sub-parse with the source name prepended to errors (the
  // expression parser itself only knows line:col).
  Result<ExprPtr> ParseClauseExpr() {
    Result<ExprPtr> result = ParseExprAt(tokens_, &pos_);
    if (!result.ok()) {
      return Status::ParseError(source_ + ": " + result.status().message());
    }
    return result;
  }

  Result<std::vector<std::string>> ParseIdentifierList(
      const std::string& what) {
    std::vector<std::string> names;
    while (true) {
      CAESAR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier(what));
      names.push_back(std::move(name));
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    return names;
  }

  // "<source>:<line>:<col>: message" — the CSV reader's prefix convention.
  Status Error(const std::string& message) const {
    return Status::ParseError(source_ + ":" + Peek().loc.ToString() + ": " +
                              message);
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
  std::string source_;
};

}  // namespace

Result<CaesarModel> ParseModel(std::string_view text, TypeRegistry* registry) {
  return ParseModel(text, registry, ParseModelOptions());
}

Result<CaesarModel> ParseModel(std::string_view text, TypeRegistry* registry,
                               const ParseModelOptions& options) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) {
    return Status::ParseError(options.source_name + ": " +
                              tokens.status().message());
  }
  CaesarModel model(registry);
  ModelParser parser(tokens.value(), 0, options.source_name);
  CAESAR_RETURN_IF_ERROR(parser.ParseModelBody(&model));
  if (!options.strict) {
    model.NormalizeLenient();
    return model;
  }
  CAESAR_RETURN_IF_ERROR(model.Normalize());
  // Context-graph sanity (PR 4's hard-coded rejections, now coded
  // diagnostics C001/C002 from the analyzer): strict parses keep rejecting
  // these shapes, with the span-prefixed, coded rendering.
  std::vector<Diagnostic> graph = AnalyzeContextGraph(model);
  for (Diagnostic& diag : graph) {
    if (diag.severity != DiagSeverity::kError) continue;
    diag.source = options.source_name;
    return Status::ParseError(FormatDiagnostic(diag));
  }
  return model;
}

Result<Query> ParseQuery(std::string_view text) {
  CAESAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  ModelParser parser(tokens, 0, "<query>");
  CAESAR_ASSIGN_OR_RETURN(Query query, parser.ParseQueryBody());
  if (parser.Peek().kind != TokenKind::kEnd &&
      parser.Peek().kind != TokenKind::kSemicolon) {
    return Status::ParseError("trailing input after query");
  }
  return query;
}

}  // namespace caesar
