#include "query/parser.h"

#include <string>
#include <vector>

#include "expr/lexer.h"
#include "expr/parser.h"

namespace caesar {

namespace {

// Keywords that begin a clause; an identifier list (e.g. CONTEXT names)
// stops before these.
bool IsClauseKeyword(const Token& token) {
  static constexpr const char* kKeywords[] = {
      "QUERY",   "INITIATE", "SWITCH",  "TERMINATE", "DERIVE",
      "PATTERN", "WHERE",    "CONTEXT", "CONTEXTS",  "PARTITION",
      "DEFAULT"};
  for (const char* keyword : kKeywords) {
    if (token.IsKeyword(keyword)) return true;
  }
  return false;
}

class ModelParser {
 public:
  ModelParser(const std::vector<Token>& tokens, size_t pos)
      : tokens_(tokens), pos_(pos) {}


  // Parses one query: a sequence of clauses up to ';' or end.
  Result<Query> ParseQueryBody() {
    Query query;
    if (Peek().IsKeyword("QUERY")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(query.name, ExpectIdentifier("query name"));
    }
    bool any_clause = false;
    while (true) {
      const Token& token = Peek();
      if (token.kind == TokenKind::kEnd ||
          token.kind == TokenKind::kSemicolon) {
        break;
      }
      if (token.IsKeyword("INITIATE") || token.IsKeyword("SWITCH") ||
          token.IsKeyword("TERMINATE")) {
        if (query.action != ContextAction::kNone) {
          return Error("duplicate context action clause");
        }
        query.action = token.IsKeyword("INITIATE") ? ContextAction::kInitiate
                       : token.IsKeyword("SWITCH") ? ContextAction::kSwitch
                                                   : ContextAction::kTerminate;
        ++pos_;
        if (!Peek().IsKeyword("CONTEXT")) {
          return Error("expected CONTEXT after context action");
        }
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(query.target_context,
                                ExpectIdentifier("context name"));
        any_clause = true;
      } else if (token.IsKeyword("DERIVE")) {
        if (query.derive.has_value()) return Error("duplicate DERIVE clause");
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(DeriveSpec derive, ParseDerive());
        query.derive = std::move(derive);
        any_clause = true;
      } else if (token.IsKeyword("PATTERN")) {
        if (query.pattern.has_value()) {
          return Error("duplicate PATTERN clause");
        }
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(PatternSpec pattern, ParsePattern());
        query.pattern = std::move(pattern);
        any_clause = true;
      } else if (token.IsKeyword("WHERE")) {
        if (query.where != nullptr) return Error("duplicate WHERE clause");
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(query.where, ParseExprAt(tokens_, &pos_));
        any_clause = true;
      } else if (token.IsKeyword("CONTEXT")) {
        if (!query.contexts.empty()) {
          return Error("duplicate CONTEXT clause");
        }
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(query.contexts,
                                ParseIdentifierList("context name"));
        any_clause = true;
      } else {
        return Error("unexpected token in query");
      }
    }
    if (!any_clause) return Error("empty query");
    return query;
  }

  // DERIVE EventType(expr (AS name)?, ...)
  Result<DeriveSpec> ParseDerive() {
    DeriveSpec derive;
    CAESAR_ASSIGN_OR_RETURN(derive.event_type,
                            ExpectIdentifier("derived event type"));
    if (Peek().kind != TokenKind::kLParen) {
      return Error("expected '(' after derived event type");
    }
    ++pos_;
    if (Peek().kind == TokenKind::kRParen) {
      ++pos_;
      return derive;
    }
    while (true) {
      CAESAR_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprAt(tokens_, &pos_));
      std::string attr_name;
      if (Peek().IsKeyword("AS")) {
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(attr_name, ExpectIdentifier("attribute name"));
      }
      derive.args.push_back(std::move(arg));
      derive.attr_names.push_back(std::move(attr_name));
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      if (Peek().kind == TokenKind::kRParen) {
        ++pos_;
        break;
      }
      return Error("expected ',' or ')' in DERIVE argument list");
    }
    return derive;
  }

  // Patt := NOT? EventType Var? | SEQ( (Patt ,?)+ ) | Aggregate,
  // optionally followed by WITHIN <ticks>. Nested SEQs flatten.
  //
  // Aggregate := AGGREGATE EventType Var? WINDOW <ticks>
  //              (GROUP BY attr (, attr)*)?
  //              COMPUTE func(attr?) AS name (, func(attr?) AS name)*
  //              (HAVING expr)?
  Result<PatternSpec> ParsePattern() {
    PatternSpec pattern;
    if (Peek().IsKeyword("AGGREGATE")) {
      ++pos_;
      return ParseAggregate();
    }
    CAESAR_RETURN_IF_ERROR(ParsePatternInto(&pattern));
    if (Peek().IsKeyword("WITHIN")) {
      ++pos_;
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer after WITHIN");
      }
      pattern.within = Peek().int_value;
      ++pos_;
    }
    return pattern;
  }

  Result<PatternSpec> ParseAggregate() {
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kAggregate;
    PatternItem item;
    CAESAR_ASSIGN_OR_RETURN(item.event_type, ExpectIdentifier("event type"));
    if (Peek().kind == TokenKind::kIdentifier && !IsClauseKeyword(Peek()) &&
        !Peek().IsKeyword("WINDOW")) {
      item.variable = Peek().text;
      ++pos_;
    }
    pattern.items.push_back(std::move(item));
    if (!Peek().IsKeyword("WINDOW")) {
      return Error("expected WINDOW in aggregate pattern");
    }
    ++pos_;
    if (Peek().kind != TokenKind::kIntLiteral) {
      return Error("expected integer window length");
    }
    pattern.window_length = Peek().int_value;
    ++pos_;
    if (Peek().IsKeyword("GROUP")) {
      ++pos_;
      if (!Peek().IsKeyword("BY")) return Error("expected BY after GROUP");
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(pattern.group_by,
                              ParseIdentifierList("group-by attribute"));
    }
    if (!Peek().IsKeyword("COMPUTE")) {
      return Error("expected COMPUTE in aggregate pattern");
    }
    ++pos_;
    while (true) {
      AggregateSpec spec;
      CAESAR_ASSIGN_OR_RETURN(std::string func,
                              ExpectIdentifier("aggregate function"));
      if (func == "count") {
        spec.func = AggregateFunc::kCount;
      } else if (func == "sum") {
        spec.func = AggregateFunc::kSum;
      } else if (func == "avg") {
        spec.func = AggregateFunc::kAvg;
      } else if (func == "min") {
        spec.func = AggregateFunc::kMin;
      } else if (func == "max") {
        spec.func = AggregateFunc::kMax;
      } else {
        return Error("unknown aggregate function " + func);
      }
      if (Peek().kind != TokenKind::kLParen) {
        return Error("expected '(' after aggregate function");
      }
      ++pos_;
      if (Peek().kind == TokenKind::kIdentifier) {
        spec.attribute = Peek().text;
        ++pos_;
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' in aggregate");
      }
      ++pos_;
      if (!Peek().IsKeyword("AS")) {
        return Error("expected AS <name> after aggregate");
      }
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(spec.name, ExpectIdentifier("aggregate name"));
      pattern.aggregates.push_back(std::move(spec));
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("HAVING")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(pattern.having, ParseExprAt(tokens_, &pos_));
    }
    return pattern;
  }

  // CONTEXTS a, b, c DEFAULT a
  Status ParseContextsDecl(CaesarModel* model) {
    CAESAR_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            ParseIdentifierList("context name"));
    for (const std::string& name : names) {
      CAESAR_RETURN_IF_ERROR(model->AddContext(name));
    }
    if (Peek().IsKeyword("DEFAULT")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(std::string default_name,
                              ExpectIdentifier("default context"));
      CAESAR_RETURN_IF_ERROR(model->SetDefaultContext(default_name));
    }
    return Status::Ok();
  }

  // PARTITION BY a, b, c
  Status ParsePartitionDecl(CaesarModel* model) {
    if (!Peek().IsKeyword("BY")) {
      return Status::ParseError("expected BY after PARTITION");
    }
    ++pos_;
    CAESAR_ASSIGN_OR_RETURN(std::vector<std::string> attrs,
                            ParseIdentifierList("attribute name"));
    model->SetPartitionBy(std::move(attrs));
    return Status::Ok();
  }

  const Token& Peek() const { return tokens_[pos_]; }

  void SkipSemicolons() {
    while (Peek().kind == TokenKind::kSemicolon) ++pos_;
  }

  // Parses the whole model body (declarations and queries) into `model`.
  Status ParseModelBody(CaesarModel* model) {
    SkipSemicolons();
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().IsKeyword("CONTEXTS")) {
        ++pos_;
        CAESAR_RETURN_IF_ERROR(ParseContextsDecl(model));
      } else if (Peek().IsKeyword("PARTITION")) {
        ++pos_;
        CAESAR_RETURN_IF_ERROR(ParsePartitionDecl(model));
      } else {
        CAESAR_ASSIGN_OR_RETURN(Query query, ParseQueryBody());
        CAESAR_RETURN_IF_ERROR(model->AddQuery(std::move(query)).status());
      }
      if (Peek().kind != TokenKind::kSemicolon &&
          Peek().kind != TokenKind::kEnd) {
        return Error("expected ';'");
      }
      SkipSemicolons();
    }
    return Status::Ok();
  }

 private:
  Status ParsePatternInto(PatternSpec* pattern) {
    if (Peek().IsKeyword("SEQ")) {
      ++pos_;
      pattern->kind = PatternSpec::Kind::kSeq;
      if (Peek().kind != TokenKind::kLParen) {
        return Status::ParseError("expected '(' after SEQ");
      }
      ++pos_;
      while (true) {
        CAESAR_RETURN_IF_ERROR(ParsePatternInto(pattern));
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        if (Peek().kind == TokenKind::kRParen) {
          ++pos_;
          break;
        }
        return Status::ParseError("expected ',' or ')' in SEQ");
      }
      return Status::Ok();
    }
    PatternItem item;
    if (Peek().IsKeyword("NOT")) {
      item.negated = true;
      ++pos_;
    }
    if (Peek().IsKeyword("SEQ")) {
      return Status::ParseError("NOT SEQ(...) is not supported");
    }
    CAESAR_ASSIGN_OR_RETURN(item.event_type, ExpectIdentifier("event type"));
    // Optional variable: an identifier that is not a clause keyword.
    if (Peek().kind == TokenKind::kIdentifier && !IsClauseKeyword(Peek()) &&
        !Peek().IsKeyword("AS") && !Peek().IsKeyword("WITHIN")) {
      item.variable = Peek().text;
      ++pos_;
    }
    pattern->items.push_back(std::move(item));
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected " + what + " at offset " +
                                std::to_string(Peek().position));
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  Result<std::vector<std::string>> ParseIdentifierList(
      const std::string& what) {
    std::vector<std::string> names;
    while (true) {
      CAESAR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier(what));
      names.push_back(std::move(name));
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    return names;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position));
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
};

// Structural sanity beyond CaesarModel::Validate(). Normalize accepts any
// context graph, but two shapes are almost certainly typos in the model
// text, so the parser rejects them with a message naming the offender:
//
//  - a non-default context no query INITIATEs or SWITCHes to can never
//    become active, so its whole workload is dead;
//  - a SWITCH gated on its own target context can only fire when the
//    partition is already where the switch would put it (and would
//    terminate the context it is nominally entering).
//
// Checked after Normalize so implicit CONTEXT clauses (default context)
// participate in both rules.
Status ValidateContextGraph(const CaesarModel& model) {
  for (const Query& query : model.queries()) {
    if (query.action != ContextAction::kSwitch) continue;
    for (const std::string& gate : query.contexts) {
      if (gate == query.target_context) {
        return Status::ParseError("query '" + query.name +
                                  "': SWITCH CONTEXT " + query.target_context +
                                  " is gated on its own target context '" +
                                  gate + "' (self-loop switch edge)");
      }
    }
  }
  for (const ContextType& context : model.contexts()) {
    if (context.name == model.default_context()) continue;
    bool reachable = false;
    for (const Query& query : model.queries()) {
      if ((query.action == ContextAction::kInitiate ||
           query.action == ContextAction::kSwitch) &&
          query.target_context == context.name) {
        reachable = true;
        break;
      }
    }
    if (!reachable) {
      return Status::ParseError("context '" + context.name +
                                "' is unreachable: no query INITIATEs or "
                                "SWITCHes to it");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<CaesarModel> ParseModel(std::string_view text, TypeRegistry* registry) {
  CAESAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  CaesarModel model(registry);
  ModelParser parser(tokens, 0);
  CAESAR_RETURN_IF_ERROR(parser.ParseModelBody(&model));
  CAESAR_RETURN_IF_ERROR(model.Normalize());
  CAESAR_RETURN_IF_ERROR(ValidateContextGraph(model));
  return model;
}

Result<Query> ParseQuery(std::string_view text) {
  CAESAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  ModelParser parser(tokens, 0);
  CAESAR_ASSIGN_OR_RETURN(Query query, parser.ParseQueryBody());
  if (parser.Peek().kind != TokenKind::kEnd &&
      parser.Peek().kind != TokenKind::kSemicolon) {
    return Status::ParseError("trailing input after query");
  }
  return query;
}

}  // namespace caesar
