// The CAESAR model (Definitions 1-4 of the paper): a finite set of context
// types with a default context, plus context-aware event queries. Each query
// combines clauses from the Fig. 4 grammar:
//
//   - context derivation:  INITIATE / SWITCH / TERMINATE CONTEXT c
//   - complex event derivation:  DERIVE E(args...)
//   - event pattern matching:    PATTERN p
//   - event filtering:           WHERE expr
//   - context window:            CONTEXT c1, c2, ...   (the windows the
//                                 query is associated with)
//
// As an extension beyond the paper's grammar (needed by the Linear Road
// benchmark queries the evaluation uses but does not spell out), patterns
// may also be sliding-window aggregates (kAggregate) with a HAVING filter.

#ifndef CAESAR_QUERY_MODEL_H_
#define CAESAR_QUERY_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/source_loc.h"
#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "expr/expr.h"

namespace caesar {

// What a context deriving clause does to its target context.
enum class ContextAction : int8_t { kNone = 0, kInitiate, kSwitch, kTerminate };

const char* ContextActionName(ContextAction action);

// One position of a SEQ pattern (or the sole item of an event-match
// pattern). Grammar: NOT? EventType Var?
struct PatternItem {
  std::string event_type;
  std::string variable;  // may be empty (anonymous)
  bool negated = false;
};

// Aggregate functions available in aggregate patterns.
enum class AggregateFunc : int8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateFuncName(AggregateFunc func);

// One aggregate output column: func(attribute) AS name.
struct AggregateSpec {
  AggregateFunc func;
  std::string attribute;  // input attribute; empty for COUNT(*)
  std::string name;       // output attribute name
};

// PATTERN clause. kEvent: single (possibly trivial) event match.
// kSeq: sequence with optional negated positions (Section 4.1).
// kAggregate: sliding-window grouped aggregate over one input type
// (extension; see header comment).
struct PatternSpec {
  enum class Kind : int8_t { kEvent, kSeq, kAggregate };

  Kind kind = Kind::kEvent;
  std::vector<PatternItem> items;  // >= 1; for kAggregate exactly 1 (input)

  // Maximum span of a SEQ match and retention horizon of its partial state
  // ("event sequence within n time units", cf. [34]); 0 = use the plan
  // default.
  Timestamp within = 0;

  // kAggregate only:
  std::vector<std::string> group_by;    // grouping attributes of the input
  std::vector<AggregateSpec> aggregates;
  Timestamp window_length = 0;          // ticks
  ExprPtr having;                       // over group_by + aggregate names

  std::string ToString() const;
};

// DERIVE clause: output event type plus one expression per attribute.
struct DeriveSpec {
  std::string event_type;
  std::vector<ExprPtr> args;
  // Output attribute names; when empty they are inferred (attribute refs
  // keep their name, other expressions get "a<i>").
  std::vector<std::string> attr_names;

  std::string ToString() const;
};

// A context-aware event query (Definition 3).
struct Query {
  std::string name;

  // Context derivation action (kNone for pure processing queries).
  ContextAction action = ContextAction::kNone;
  std::string target_context;  // for kInitiate / kSwitch / kTerminate

  std::optional<DeriveSpec> derive;
  std::optional<PatternSpec> pattern;
  ExprPtr where;  // may be null

  // CONTEXT clause: windows this query is associated with. May be empty in
  // the human-readable model (implied clauses); Phase 1 of translation makes
  // it mandatory (CaesarModel::Normalize).
  std::vector<std::string> contexts;

  // Context-history anchors, parallel to `contexts` (empty = each context
  // anchors itself). Set by the window-grouping transform: when contexts[i]
  // is a grouped window, anchors[i] names the *first* grouped window of the
  // oldest original window covering it, so the runtime can scope partial
  // matches and complex events to that original window (Section 6.2's
  // context history; see runtime/engine.cc).
  std::vector<std::string> context_anchors;

  // Runs in the context-derivation phase even without a context action:
  // helper queries whose derived events feed context deriving queries
  // (e.g. StoppedCar detection feeding accident initiation). Programmatic
  // API only.
  bool derivation_helper = false;

  // Source spans (set by the textual parser; invalid for programmatic
  // models). `loc` anchors the query as a whole; the clause locs anchor
  // diagnostics about the respective clause.
  SourceLoc loc;
  SourceLoc pattern_loc;
  SourceLoc where_loc;

  bool IsContextDeriving() const {
    return action != ContextAction::kNone || derivation_helper;
  }
  bool IsContextProcessing() const { return action == ContextAction::kNone; }

  std::string ToString() const;
};

// A context type (Definition 1): name plus its workload, stored as indices
// into CaesarModel::queries().
struct ContextType {
  std::string name;
  std::vector<int> deriving_queries;
  std::vector<int> processing_queries;
  SourceLoc loc;  // declaration site (textual models only)
};

// The CAESAR model (Definition 4): (I, O, C, c_d). Input/output streams are
// implied by the registered event types; C is the context set with default
// c_d. The model references (but does not own) the TypeRegistry holding the
// input event type schemas.
class CaesarModel {
 public:
  explicit CaesarModel(TypeRegistry* registry) : registry_(registry) {}

  TypeRegistry* registry() const { return registry_; }

  // Declares a context type. The first declared context is the default
  // unless SetDefaultContext overrides it.
  Status AddContext(const std::string& name, SourceLoc loc = {});
  Status SetDefaultContext(const std::string& name);
  const std::string& default_context() const { return default_context_; }

  // Adds a query; returns its index.
  Result<int> AddQuery(Query query);

  int num_contexts() const { return static_cast<int>(contexts_.size()); }
  const ContextType& context(int i) const { return contexts_[i]; }
  const std::vector<ContextType>& contexts() const { return contexts_; }
  // Index of the context named `name`, or -1.
  int ContextIndex(const std::string& name) const;

  int num_queries() const { return static_cast<int>(queries_.size()); }
  const Query& query(int i) const { return queries_[i]; }
  const std::vector<Query>& queries() const { return queries_; }
  // In-place query access for model-rewriting tools (the lint-oracle
  // mutations of oracle/generator.h). Invalidates nothing; callers that
  // change CONTEXT clauses should re-run Normalize[Lenient].
  Query* mutable_query(int i) { return &queries_[i]; }

  // Partitioning: contexts hold per stream partition (per unidirectional
  // road segment in Linear Road). Events are partitioned by the values of
  // these attributes (those present in each event's schema). Empty means a
  // single global partition.
  void SetPartitionBy(std::vector<std::string> attributes) {
    partition_by_ = std::move(attributes);
  }
  const std::vector<std::string>& partition_by() const {
    return partition_by_;
  }

  // Phase 1 of translation (Section 4.2): makes the implied CONTEXT clauses
  // mandatory. Queries without a CONTEXT clause are associated with the
  // default context. Also populates each context's workload lists.
  Status Normalize();

  // Checks structural validity: known contexts, patterns present, derive or
  // action present, context-action consistency. Called by Normalize.
  Status Validate() const;

  // Best-effort Normalize for analysis tooling: applies implied CONTEXT
  // clauses and populates workloads for contexts that resolve, but never
  // fails — the analyzer reports validity violations as coded diagnostics
  // instead (see analysis/analyzer.h).
  void NormalizeLenient();

  std::string ToString() const;

 private:
  TypeRegistry* registry_;  // not owned
  std::vector<ContextType> contexts_;
  std::string default_context_;
  std::vector<Query> queries_;
  std::vector<std::string> partition_by_;
};

}  // namespace caesar

#endif  // CAESAR_QUERY_MODEL_H_
