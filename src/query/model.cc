#include "query/model.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace caesar {

const char* ContextActionName(ContextAction action) {
  switch (action) {
    case ContextAction::kNone:
      return "none";
    case ContextAction::kInitiate:
      return "INITIATE";
    case ContextAction::kSwitch:
      return "SWITCH";
    case ContextAction::kTerminate:
      return "TERMINATE";
  }
  return "?";
}

const char* AggregateFuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kCount:
      return "count";
    case AggregateFunc::kSum:
      return "sum";
    case AggregateFunc::kAvg:
      return "avg";
    case AggregateFunc::kMin:
      return "min";
    case AggregateFunc::kMax:
      return "max";
  }
  return "?";
}

std::string PatternSpec::ToString() const {
  std::ostringstream os;
  auto item_str = [](const PatternItem& item) {
    std::string s;
    if (item.negated) s += "NOT ";
    s += item.event_type;
    if (!item.variable.empty()) s += " " + item.variable;
    return s;
  };
  switch (kind) {
    case Kind::kEvent:
      os << item_str(items[0]);
      break;
    case Kind::kSeq:
      os << "SEQ(";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) os << ", ";
        os << item_str(items[i]);
      }
      os << ")";
      break;
    case Kind::kAggregate:
      os << "AGG(" << item_str(items[0]) << ", window=" << window_length
         << ", by=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) os << ",";
        os << group_by[i];
      }
      os << "], [";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) os << ",";
        os << AggregateFuncName(aggregates[i].func) << "("
           << aggregates[i].attribute << ") AS " << aggregates[i].name;
      }
      os << "]";
      if (having != nullptr) os << " HAVING " << having->ToString();
      os << ")";
      break;
  }
  return os.str();
}

std::string DeriveSpec::ToString() const {
  std::ostringstream os;
  os << event_type << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << args[i]->ToString();
  }
  os << ")";
  return os.str();
}

std::string Query::ToString() const {
  std::ostringstream os;
  if (!name.empty()) os << "QUERY " << name << "\n";
  if (action != ContextAction::kNone) {
    os << ContextActionName(action) << " CONTEXT " << target_context << "\n";
  }
  if (derive.has_value()) os << "DERIVE " << derive->ToString() << "\n";
  if (pattern.has_value()) os << "PATTERN " << pattern->ToString() << "\n";
  if (where != nullptr) os << "WHERE " << where->ToString() << "\n";
  if (!contexts.empty()) {
    os << "CONTEXT ";
    for (size_t i = 0; i < contexts.size(); ++i) {
      if (i > 0) os << ", ";
      os << contexts[i];
    }
    os << "\n";
  }
  return os.str();
}

Status CaesarModel::AddContext(const std::string& name, SourceLoc loc) {
  if (ContextIndex(name) >= 0) {
    return Status::AlreadyExists("context already declared: " + name);
  }
  ContextType context;
  context.name = name;
  context.loc = loc;
  contexts_.push_back(std::move(context));
  if (default_context_.empty()) default_context_ = name;
  return Status::Ok();
}

Status CaesarModel::SetDefaultContext(const std::string& name) {
  if (ContextIndex(name) < 0) {
    return Status::NotFound("unknown default context: " + name);
  }
  default_context_ = name;
  return Status::Ok();
}

Result<int> CaesarModel::AddQuery(Query query) {
  queries_.push_back(std::move(query));
  return num_queries() - 1;
}

int CaesarModel::ContextIndex(const std::string& name) const {
  for (int i = 0; i < num_contexts(); ++i) {
    if (contexts_[i].name == name) return i;
  }
  return -1;
}

Status CaesarModel::Normalize() {
  if (contexts_.empty()) {
    return Status::FailedPrecondition("model declares no contexts");
  }
  // Phase 1: implied CONTEXT clauses become mandatory.
  for (Query& query : queries_) {
    if (query.contexts.empty()) {
      query.contexts.push_back(default_context_);
    }
  }
  CAESAR_RETURN_IF_ERROR(Validate());
  // Populate per-context workloads.
  for (ContextType& context : contexts_) {
    context.deriving_queries.clear();
    context.processing_queries.clear();
  }
  for (int qi = 0; qi < num_queries(); ++qi) {
    const Query& query = queries_[qi];
    for (const std::string& context_name : query.contexts) {
      ContextType& context = contexts_[ContextIndex(context_name)];
      if (query.IsContextDeriving()) {
        context.deriving_queries.push_back(qi);
      } else {
        context.processing_queries.push_back(qi);
      }
    }
  }
  return Status::Ok();
}

void CaesarModel::NormalizeLenient() {
  // Implied CONTEXT clauses (skipped when no context is declared at all;
  // the analyzer reports that as its own diagnostic).
  if (!contexts_.empty()) {
    for (Query& query : queries_) {
      if (query.contexts.empty()) {
        query.contexts.push_back(default_context_);
      }
    }
  }
  // Workloads for contexts that resolve; unknown names are left for the
  // analyzer (C005) rather than failing.
  for (ContextType& context : contexts_) {
    context.deriving_queries.clear();
    context.processing_queries.clear();
  }
  for (int qi = 0; qi < num_queries(); ++qi) {
    const Query& query = queries_[qi];
    for (const std::string& context_name : query.contexts) {
      int ci = ContextIndex(context_name);
      if (ci < 0) continue;
      if (query.IsContextDeriving()) {
        contexts_[ci].deriving_queries.push_back(qi);
      } else {
        contexts_[ci].processing_queries.push_back(qi);
      }
    }
  }
}

Status CaesarModel::Validate() const {
  if (ContextIndex(default_context_) < 0) {
    return Status::FailedPrecondition("default context not declared: " +
                                      default_context_);
  }
  for (int qi = 0; qi < num_queries(); ++qi) {
    const Query& query = queries_[qi];
    std::string label =
        query.name.empty() ? "query #" + std::to_string(qi) : query.name;
    if (!query.pattern.has_value()) {
      return Status::FailedPrecondition(label + ": missing PATTERN clause");
    }
    if (query.pattern->items.empty()) {
      return Status::FailedPrecondition(label + ": empty pattern");
    }
    if (query.action == ContextAction::kNone && !query.derive.has_value()) {
      return Status::FailedPrecondition(
          label + ": needs a DERIVE clause or a context action");
    }
    if (query.action != ContextAction::kNone) {
      if (ContextIndex(query.target_context) < 0) {
        return Status::FailedPrecondition(label + ": unknown target context " +
                                          query.target_context);
      }
    }
    for (const std::string& context_name : query.contexts) {
      if (ContextIndex(context_name) < 0) {
        return Status::FailedPrecondition(label + ": unknown context " +
                                          context_name);
      }
    }
    if (!query.context_anchors.empty()) {
      if (query.context_anchors.size() != query.contexts.size()) {
        return Status::FailedPrecondition(
            label + ": context_anchors must parallel the CONTEXT clause");
      }
      for (const std::string& anchor : query.context_anchors) {
        if (ContextIndex(anchor) < 0) {
          return Status::FailedPrecondition(label + ": unknown anchor " +
                                            anchor);
        }
      }
    }
    if (query.pattern->kind == PatternSpec::Kind::kSeq) {
      bool has_positive = false;
      for (const PatternItem& item : query.pattern->items) {
        if (!item.negated) has_positive = true;
      }
      if (!has_positive) {
        return Status::FailedPrecondition(label +
                                          ": pattern has no positive event");
      }
    }
    if (query.pattern->kind == PatternSpec::Kind::kAggregate) {
      if (query.pattern->items.size() != 1 || query.pattern->items[0].negated) {
        return Status::FailedPrecondition(
            label + ": aggregate pattern needs one positive input");
      }
      if (query.pattern->window_length <= 0) {
        return Status::FailedPrecondition(
            label + ": aggregate pattern needs a positive window length");
      }
    }
  }
  return Status::Ok();
}

std::string CaesarModel::ToString() const {
  std::ostringstream os;
  os << "CONTEXTS ";
  for (int i = 0; i < num_contexts(); ++i) {
    if (i > 0) os << ", ";
    os << contexts_[i].name;
    if (contexts_[i].name == default_context_) os << " (default)";
  }
  os << "\n\n";
  for (const Query& query : queries_) {
    os << query.ToString() << "\n";
  }
  return os.str();
}

}  // namespace caesar
