// Parser for the textual CAESAR query language (Fig. 4 of the paper), with
// small concrete-syntax additions needed to write whole models in one file:
//
//   CONTEXTS clear, congestion, accident DEFAULT clear;
//   PARTITION BY xway, dir, seg;
//
//   QUERY toll_notification
//   DERIVE TollNotification(p.vid AS vid, p.sec AS sec, 5 AS toll)
//   PATTERN NewTravelingCar p
//   CONTEXT congestion;
//
//   QUERY accident_detected
//   INITIATE CONTEXT accident
//   PATTERN SEQ(StoppedCar s1, StoppedCar s2)
//   WHERE s1.pos = s2.pos AND s1.vid != s2.vid
//   CONTEXT clear, congestion;
//
// Queries and declarations are ';'-terminated. Clause keywords are
// case-insensitive. The CONTEXT clause may be omitted (the model implies the
// default context; see CaesarModel::Normalize).
//
// Standalone model files may declare their input event schemas inline so
// linting needs no host program:
//
//   TYPE PositionReport(vid int, speed int, xway int);
//
// Error messages follow the "<source>:<line>:<col>: " prefix convention of
// the tolerant CSV reader; parsed queries carry source spans for the
// analyzer (see analysis/diagnostics.h).

#ifndef CAESAR_QUERY_PARSER_H_
#define CAESAR_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "event/schema.h"
#include "query/model.h"

namespace caesar {

struct ParseModelOptions {
  // Names the source in error prefixes and diagnostic spans.
  std::string source_name = "<model>";

  // Strict (the default): Normalize/Validate failures and context-graph
  // errors (unreachable contexts C001, self-loop switches C002) reject the
  // parse. Lenient: the model is returned after a best-effort normalize so
  // the analyzer can report those as coded diagnostics (analysis/).
  bool strict = true;
};

// Parses a complete model (type/context declarations plus queries) and
// normalizes it. `registry` must outlive the returned model; inline TYPE
// declarations are registered into it.
Result<CaesarModel> ParseModel(std::string_view text, TypeRegistry* registry);
Result<CaesarModel> ParseModel(std::string_view text, TypeRegistry* registry,
                               const ParseModelOptions& options);

// Parses a single query (without the trailing ';').
Result<Query> ParseQuery(std::string_view text);

}  // namespace caesar

#endif  // CAESAR_QUERY_PARSER_H_
