// Checkpoint files: point-in-time serializations of the full resumable
// engine state, published atomically so a crash mid-write can never corrupt
// an existing checkpoint.
//
// On-disk layout:
//
//   ckpt-<batch_seq, 10 digits>.ckpt
//     [u64 magic "CAESCKP1"][u32 version]
//     [u64 batch_seq]   the last committed Run batch the state covers
//     [u64 wal_seq]     first WAL segment with batches beyond this state
//     [i64 last_tick]   last applied tick (checkpoint cadence after recovery)
//     [u32 len][u32 crc32(payload)][payload]   engine-defined state bytes
//
// Publication protocol: write ckpt-<seq>.tmp, fsync it, rename(2) onto the
// final name, fsync the directory. Recovery picks the newest checkpoint
// whose checksum validates; corrupt candidates are skipped with I411 and
// the scan falls back to the next older one (recovery then replays a longer
// WAL suffix — degraded, never wrong).

#ifndef CAESAR_DURABILITY_CHECKPOINT_H_
#define CAESAR_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "durability/durability.h"
#include "event/event.h"

namespace caesar {

struct CheckpointInfo {
  uint64_t batch_seq = 0;
  uint64_t wal_seq = 1;
  Timestamp last_tick = 0;
  std::string payload;
};

std::string CheckpointFileName(uint64_t batch_seq);

// Writes and atomically publishes `info` in `dir`. The crash hook is
// consulted at "checkpoint_write" (tmp half-written, then death) and
// "checkpoint_publish" (tmp complete, death before the rename). Bumps
// *fsyncs for each sync performed.
Status WriteCheckpointFile(const std::string& dir, const CheckpointInfo& info,
                           const CrashHook& crash_hook, int64_t* fsyncs);

struct CheckpointScanResult {
  bool found = false;
  CheckpointInfo latest;       // valid only when found
  int64_t skipped_corrupt = 0; // candidates rejected by checksum/framing
  std::vector<Diagnostic> diagnostics;  // one I411 per rejected candidate
};

// Newest checkpoint in `dir` that passes validation. Stale .tmp files from
// an interrupted publication are ignored (and removed). A missing directory
// scans as "none found".
Result<CheckpointScanResult> FindLatestCheckpoint(const std::string& dir);

// Retention after a successful checkpoint: keeps the newest
// `keep_checkpoints` checkpoint files, deletes older ones, and truncates
// the log at the horizon — every WAL segment below the oldest retained
// checkpoint's wal_seq is removed.
Status RetireOldArtifacts(const std::string& dir, int keep_checkpoints);

}  // namespace caesar

#endif  // CAESAR_DURABILITY_CHECKPOINT_H_
