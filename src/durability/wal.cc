#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "durability/crc32.h"
#include "durability/serde.h"

namespace caesar {

namespace {

constexpr uint64_t kWalMagic = 0x314C415753454143ULL;  // "CAESWAL1"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kSegmentHeaderBytes = 8 + 4 + 8;
constexpr size_t kRecordHeaderBytes = 4 + 4;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const void* data, size_t n, const std::string& what) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::Ok();
}

std::string FrameRecord(std::string_view payload) {
  StateWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(Crc32(payload));
  std::string framed = header.Take();
  framed.append(payload.data(), payload.size());
  return framed;
}

// Parses "wal-NNNNNNNNNN.log" into NNNNNNNNNN; 0 when the name does not
// match.
uint64_t ParseSegmentSeq(const std::string& filename) {
  constexpr std::string_view prefix = "wal-";
  constexpr std::string_view suffix = ".log";
  if (filename.size() <= prefix.size() + suffix.size()) return 0;
  if (filename.compare(0, prefix.size(), prefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return 0;
  }
  std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    uint64_t seq = ParseSegmentSeq(name);
    if (seq > 0) segments.emplace_back(seq, name);
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Diagnostic RecoveryDiag(DiagCode code, const std::string& segment,
                        std::string message) {
  Diagnostic diag = MakeDiag(code, std::move(message));
  diag.source = segment;
  return diag;
}

}  // namespace

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string EncodeTickRecord(uint64_t batch_seq, Timestamp tick,
                             const EventPtr* events, size_t n) {
  StateWriter w;
  w.U8(kWalRecordTick);
  w.U64(batch_seq);
  w.I64(tick);
  w.U32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) WriteEvent(&w, *events[i]);
  return w.Take();
}

std::string EncodeCommitRecord(uint64_t batch_seq, std::string_view snapshot) {
  StateWriter w;
  w.U8(kWalRecordCommit);
  w.U64(batch_seq);
  std::string payload = w.Take();
  payload.append(snapshot.data(), snapshot.size());
  return payload;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const DurabilityOptions& options, uint64_t segment_seq,
    DurabilityCounters* counters) {
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("wal: cannot create directory " + options.dir +
                            ": " + ec.message());
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(options, counters));
  CAESAR_RETURN_IF_ERROR(writer->OpenSegment(segment_seq));
  return writer;
}

WalWriter::~WalWriter() {
  Status status = CloseSegment();
  (void)status;  // destructor: best effort
}

Status WalWriter::OpenSegment(uint64_t seq) {
  std::string path =
      (std::filesystem::path(options_.dir) / WalSegmentFileName(seq)).string();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("wal: open " + path);
  fd_ = fd;
  seq_ = seq;
  segment_offset_ = 0;
  StateWriter header;
  header.U64(kWalMagic);
  header.U32(kWalVersion);
  header.U64(seq);
  Status status =
      WriteAll(fd_, header.data().data(), header.size(), "wal: header");
  if (!status.ok()) return status;
  segment_offset_ = header.size();
  return Status::Ok();
}

Status WalWriter::CloseSegment() {
  if (fd_ < 0) return Status::Ok();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("wal: close");
  return Status::Ok();
}

Status WalWriter::Append(std::string_view payload,
                         std::string_view crash_point) {
  if (fd_ < 0) return Status::FailedPrecondition("wal: writer closed");
  std::string framed = FrameRecord(payload);
  if (options_.crash_hook && options_.crash_hook(crash_point)) {
    // Simulated kill mid-append: a torn prefix of the record reaches the
    // disk (header plus half the payload), then the "process" dies. The
    // recovery scan must truncate this tail (I410).
    size_t torn = kRecordHeaderBytes + (framed.size() - kRecordHeaderBytes) / 2;
    Status status = WriteAll(fd_, framed.data(), torn, "wal: torn append");
    if (!status.ok()) return status;
    return Status::DataLoss("crash injected at " + std::string(crash_point));
  }
  CAESAR_RETURN_IF_ERROR(
      WriteAll(fd_, framed.data(), framed.size(), "wal: append"));
  segment_offset_ += framed.size();
  ++counters_->wal_records;
  counters_->wal_bytes += static_cast<int64_t>(framed.size());
  if (options_.fsync == FsyncPolicy::kAlways) {
    CAESAR_RETURN_IF_ERROR(Sync());
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("wal: writer closed");
  if (::fsync(fd_) != 0) return Errno("wal: fsync");
  ++counters_->fsyncs;
  return Status::Ok();
}

Status WalWriter::Rotate(uint64_t new_seq) {
  CAESAR_RETURN_IF_ERROR(CloseSegment());
  return OpenSegment(new_seq);
}

Status WalWriter::MaybeRotate() {
  if (segment_offset_ < options_.segment_bytes) return Status::Ok();
  return Rotate(seq_ + 1);
}

uint64_t MaxWalSegmentSeq(const std::string& dir) {
  auto segments = ListSegments(dir);
  return segments.empty() ? 0 : segments.back().first;
}

Result<WalScanResult> ScanWal(const std::string& dir,
                              uint64_t from_segment_seq,
                              uint64_t min_batch_seq) {
  WalScanResult result;
  result.max_batch_seq = min_batch_seq;
  if (!std::filesystem::exists(dir)) return result;
  auto segments = ListSegments(dir);
  if (!segments.empty()) {
    result.next_segment_seq = segments.back().first + 1;
  }

  // Ticks of the batch currently being reassembled; discarded if the scan
  // ends before its commit record (an unsealed Run is not durable).
  WalBatch pending;
  uint64_t applied_seq = min_batch_seq;
  bool stop = false;

  for (const auto& [seq, name] : segments) {
    if (stop) break;
    if (from_segment_seq > 0 && seq < from_segment_seq) continue;
    std::string path = (std::filesystem::path(dir) / name).string();
    std::string data;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        return Status::Internal("wal: cannot read " + path);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      data = buf.str();
    }
    StateReader header(std::string_view(data).substr(
        0, std::min(data.size(), kSegmentHeaderBytes)));
    uint64_t magic = header.U64();
    uint32_t version = header.U32();
    uint64_t file_seq = header.U64();
    if (!header.ok() || magic != kWalMagic || version != kWalVersion ||
        file_seq != seq) {
      result.diagnostics.push_back(RecoveryDiag(
          DiagCode::kI412WalRecordCrcMismatch, name,
          "unreadable segment header; replay stopped at this segment"));
      break;
    }

    size_t offset = kSegmentHeaderBytes;
    while (offset < data.size()) {
      const size_t record_start = offset;
      auto truncate_tail = [&](DiagCode code, const std::string& why) {
        std::error_code ec;
        std::filesystem::resize_file(path, record_start, ec);
        size_t discarded = data.size() - record_start;
        result.diagnostics.push_back(RecoveryDiag(
            code, name,
            why + " at offset " + std::to_string(record_start) + "; " +
                std::to_string(discarded) + " byte(s) discarded"));
        if (code == DiagCode::kI410TornWalTail) {
          ++result.torn_tail_truncations;
        }
        stop = true;
      };

      if (data.size() - offset < kRecordHeaderBytes) {
        truncate_tail(DiagCode::kI410TornWalTail, "torn record header");
        break;
      }
      StateReader frame(std::string_view(data).substr(offset, 8));
      uint32_t len = frame.U32();
      uint32_t crc = frame.U32();
      offset += kRecordHeaderBytes;
      if (len > data.size() - offset) {
        truncate_tail(DiagCode::kI410TornWalTail, "torn record payload");
        break;
      }
      std::string_view payload = std::string_view(data).substr(offset, len);
      offset += len;
      if (Crc32(payload) != crc) {
        truncate_tail(DiagCode::kI412WalRecordCrcMismatch,
                      "record checksum mismatch");
        break;
      }

      StateReader r(payload);
      uint8_t type = r.U8();
      uint64_t batch_seq = r.U64();
      if (!r.ok()) {
        truncate_tail(DiagCode::kI412WalRecordCrcMismatch,
                      "record too short for its type header");
        break;
      }
      if (batch_seq <= applied_seq) {
        // Behind the recovery horizon: a duplicated tail record or a batch
        // already covered by the checkpoint. Skipped, not fatal.
        result.diagnostics.push_back(RecoveryDiag(
            DiagCode::kI413StaleWalRecord, name,
            "record for batch " + std::to_string(batch_seq) +
                " at offset " + std::to_string(record_start) +
                " is at or below the recovery horizon " +
                std::to_string(applied_seq) + "; skipped"));
        continue;
      }
      if (type == kWalRecordTick) {
        if (pending.batch_seq != batch_seq) {
          pending = WalBatch{};
          pending.batch_seq = batch_seq;
        }
        Timestamp tick = r.I64();
        uint32_t n = r.U32();
        EventBatch events;
        events.reserve(r.ok() ? n : 0);
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
          EventPtr event = ReadEvent(&r);
          if (event != nullptr) events.push_back(std::move(event));
        }
        if (!r.ok()) {
          truncate_tail(DiagCode::kI412WalRecordCrcMismatch,
                        "undecodable tick record");
          break;
        }
        pending.ticks.emplace_back(tick, std::move(events));
      } else if (type == kWalRecordCommit) {
        WalBatch batch = std::move(pending);
        pending = WalBatch{};
        if (batch.batch_seq != batch_seq) {
          // Commit without its ticks in scope (e.g. an empty batch that
          // only sealed ingest-state changes).
          batch = WalBatch{};
          batch.batch_seq = batch_seq;
        }
        batch.snapshot = std::string(payload.substr(1 + 8));
        applied_seq = batch_seq;
        result.max_batch_seq = std::max(result.max_batch_seq, batch_seq);
        result.batches.push_back(std::move(batch));
      } else {
        truncate_tail(DiagCode::kI412WalRecordCrcMismatch,
                      "unknown record type " + std::to_string(type));
        break;
      }
    }
  }
  return result;
}

}  // namespace caesar
