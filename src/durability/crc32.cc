#include "durability/crc32.h"

namespace caesar {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace caesar
