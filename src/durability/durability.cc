#include "durability/durability.h"

namespace caesar {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kWal:
      return "wal";
    case DurabilityMode::kWalCheckpoint:
      return "wal+checkpoint";
  }
  return "?";
}

bool ParseDurabilityMode(const std::string& name, DurabilityMode* out) {
  if (name == "off") {
    *out = DurabilityMode::kOff;
  } else if (name == "wal") {
    *out = DurabilityMode::kWal;
  } else if (name == "wal+checkpoint") {
    *out = DurabilityMode::kWalCheckpoint;
  } else {
    return false;
  }
  return true;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* out) {
  if (name == "none") {
    *out = FsyncPolicy::kNone;
  } else if (name == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (name == "always") {
    *out = FsyncPolicy::kAlways;
  } else {
    return false;
  }
  return true;
}

Status DurabilityOptions::Validate() const {
  if (mode == DurabilityMode::kOff) return Status::Ok();
  if (dir.empty()) {
    return Status::InvalidArgument(
        "DurabilityOptions::dir must be set when durability is on");
  }
  if (checkpoint_interval_ticks < 1) {
    return Status::InvalidArgument(
        "DurabilityOptions::checkpoint_interval_ticks must be >= 1, got " +
        std::to_string(checkpoint_interval_ticks));
  }
  if (segment_bytes < 1) {
    return Status::InvalidArgument(
        "DurabilityOptions::segment_bytes must be >= 1");
  }
  return Status::Ok();
}

}  // namespace caesar
