#include "durability/serde.h"

namespace caesar {

void WriteValue(StateWriter* w, const Value& value) {
  w->U8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->I64(value.AsInt());
      break;
    case ValueType::kDouble:
      w->F64(value.AsDouble());
      break;
    case ValueType::kString:
      w->Str(value.AsString());
      break;
  }
}

Value ReadValue(StateReader* r) {
  switch (static_cast<ValueType>(r->U8())) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt:
      return Value(r->I64());
    case ValueType::kDouble:
      return Value(r->F64());
    case ValueType::kString:
      return Value(r->Str());
  }
  return Value();
}

void WriteEvent(StateWriter* w, const Event& event) {
  w->I64(event.type_id());
  w->I64(event.start_time());
  w->I64(event.end_time());
  w->U32(static_cast<uint32_t>(event.num_values()));
  for (const Value& value : event.values()) WriteValue(w, value);
}

EventPtr ReadEvent(StateReader* r) {
  TypeId type_id = static_cast<TypeId>(r->I64());
  Timestamp start = r->I64();
  Timestamp end = r->I64();
  uint32_t n = r->U32();
  // A corrupt count would otherwise allocate unbounded scratch before the
  // sticky error flag surfaces: each value consumes at least one byte.
  if (!r->ok() || n > r->remaining()) return nullptr;
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) values.push_back(ReadValue(r));
  if (!r->ok()) return nullptr;
  return MakeComplexEvent(type_id, start, end, std::move(values));
}

}  // namespace caesar
