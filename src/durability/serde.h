// Binary state serialization for durability artifacts (WAL records and
// checkpoints). Fixed-width little-endian encoding, no alignment, no
// varints: the format must be byte-identical across runs so that durability
// counters (wal_bytes) stay deterministic and the differential harness can
// hold crash recovery to byte equality.
//
// StateWriter appends into an owned string; StateReader consumes a view
// with a sticky error flag — a truncated or corrupted payload turns every
// subsequent read into a zero value and leaves ok() false, so callers check
// once at the end instead of after every field.

#ifndef CAESAR_DURABILITY_SERDE_H_
#define CAESAR_DURABILITY_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "event/event.h"
#include "event/value.h"

namespace caesar {

class StateWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  // Bit-pattern encoding: doubles (incrementally maintained aggregate sums,
  // the virtual clock) must round-trip bit-exact, not via decimal text.
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  size_t size() const { return out_.size(); }
  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, 1);
    return v;
  }
  bool Bool() { return U8() != 0; }
  uint32_t U32() {
    unsigned char raw[4] = {};
    Take(raw, 4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(raw[i]) << (8 * i);
    return v;
  }
  uint64_t U64() {
    unsigned char raw[8] = {};
    Take(raw, 8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  // One Status for the whole decode; `what` names the artifact.
  Status CheckFullyConsumed(const std::string& what) const {
    if (!ok_) return Status::DataLoss(what + ": truncated or corrupt payload");
    if (!AtEnd()) {
      return Status::DataLoss(what + ": " + std::to_string(remaining()) +
                              " trailing byte(s) after payload");
    }
    return Status::Ok();
  }

 private:
  bool Take(void* dst, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    __builtin_memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Values and events: the payload vocabulary shared by WAL records (admitted
// and quarantined events) and checkpoints (partials, runs, aggregates).
// EventPtr identity is not preserved — events are immutable values, so a
// shared pointer deserializes into a fresh allocation with equal content.
void WriteValue(StateWriter* w, const Value& value);
Value ReadValue(StateReader* r);
void WriteEvent(StateWriter* w, const Event& event);
EventPtr ReadEvent(StateReader* r);

}  // namespace caesar

#endif  // CAESAR_DURABILITY_SERDE_H_
