// Durability configuration and counters, shared by EngineOptions, the
// statistics report, and the WAL/checkpoint machinery. Kept lightweight so
// runtime/engine.h and runtime/statistics.h can include it without pulling
// in the file-format code (wal.h / checkpoint.h).
//
// Contract (DESIGN.md section 12): with durability on, a Run call that
// returns OK is durable — its admitted events are in the WAL under a sealed
// commit record (group commit, fsynced per FsyncPolicy), and recovery
// restores the engine to the state after the last committed Run. A Run that
// failed or never returned is not durable; the client re-submits its input
// after Engine::Recover. Replay is deterministic, so the recovered engine's
// downstream output is byte-identical to an uninterrupted run.

#ifndef CAESAR_DURABILITY_DURABILITY_H_
#define CAESAR_DURABILITY_DURABILITY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace caesar {

// What the engine persists. kOff is bit-for-bit the pre-durability engine:
// no files are touched and no counters move.
enum class DurabilityMode : int8_t {
  kOff = 0,        // no durability (the deterministic test default)
  kWal,            // WAL only: recovery replays the whole log
  kWalCheckpoint,  // WAL + periodic checkpoints bounding replay time
};

const char* DurabilityModeName(DurabilityMode mode);
// Parses "off" / "wal" / "wal+checkpoint"; false on anything else.
bool ParseDurabilityMode(const std::string& name, DurabilityMode* out);

// When the WAL is flushed to stable storage. Group commit is the default:
// one fsync per Run batch bounds the loss window to one uncommitted batch
// without paying a sync per record.
enum class FsyncPolicy : int8_t {
  kNone = 0,  // rely on the page cache (process-crash durable only)
  kBatch,     // fsync once per committed Run batch
  kAlways,    // fsync after every record
};

const char* FsyncPolicyName(FsyncPolicy policy);
bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* out);

// Test-only crash injection: invoked at named points of the write path
// ("wal_append", "wal_commit", "checkpoint_write", "checkpoint_publish").
// Returning true makes the durability layer leave deliberately partial
// on-disk state (a half-written record, an unpublished tmp checkpoint) and
// fail the operation with DataLoss — an in-process SIGKILL equivalent the
// crash-recovery harness can aim at any byte of the protocol.
using CrashHook = std::function<bool(std::string_view point)>;

struct DurabilityOptions {
  DurabilityMode mode = DurabilityMode::kOff;

  // Directory for WAL segments and checkpoints. Created if absent. A fresh
  // engine appends after whatever is already there (never clobbers);
  // Engine::Recover is the path that reads it.
  std::string dir;

  FsyncPolicy fsync = FsyncPolicy::kBatch;

  // Under kWalCheckpoint: checkpoint when at least this many ticks elapsed
  // since the last one (checked at Run batch boundaries, where the reorder
  // buffer is drained and per-Run counters are folded).
  int64_t checkpoint_interval_ticks = 256;

  // Segment rotation threshold; rotation also happens at every checkpoint
  // so the log can be truncated at the checkpoint horizon.
  uint64_t segment_bytes = 4u << 20;

  CrashHook crash_hook;  // test-only, see CrashHook

  // mode != kOff requires a dir; interval and segment bound must be >= 1.
  Status Validate() const;
};

// The six durability counters threaded through RunStats, StatisticsReport,
// and the JSON/Prometheus exporters. All are maintained on the scheduler
// thread only, so deterministic exports stay byte-identical across worker
// counts.
struct DurabilityCounters {
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t fsyncs = 0;
  int64_t checkpoints_written = 0;
  // Set during Engine::Recover, constant afterwards.
  int64_t recovery_replayed_events = 0;
  int64_t torn_tail_truncations = 0;
};

}  // namespace caesar

#endif  // CAESAR_DURABILITY_DURABILITY_H_
