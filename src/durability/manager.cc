#include "durability/manager.h"

#include <algorithm>
#include <utility>

namespace caesar {

Result<RecoveryScan> ScanForRecovery(const DurabilityOptions& options) {
  CAESAR_RETURN_IF_ERROR(options.Validate());
  RecoveryScan scan;
  CAESAR_ASSIGN_OR_RETURN(CheckpointScanResult ckpt,
                          FindLatestCheckpoint(options.dir));
  scan.checkpoint_found = ckpt.found;
  scan.checkpoints_skipped = ckpt.skipped_corrupt;
  scan.diagnostics = std::move(ckpt.diagnostics);
  uint64_t from_segment = 0;
  uint64_t horizon = 0;
  if (ckpt.found) {
    scan.checkpoint = std::move(ckpt.latest);
    from_segment = scan.checkpoint.wal_seq;
    horizon = scan.checkpoint.batch_seq;
  }
  CAESAR_ASSIGN_OR_RETURN(WalScanResult wal,
                          ScanWal(options.dir, from_segment, horizon));
  scan.batches = std::move(wal.batches);
  scan.torn_tail_truncations = wal.torn_tail_truncations;
  for (auto& diag : wal.diagnostics) {
    scan.diagnostics.push_back(std::move(diag));
  }
  scan.next_batch_seq = std::max(horizon, wal.max_batch_seq) + 1;
  scan.next_segment_seq = std::max(wal.next_segment_seq, from_segment + 1);
  return scan;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options) {
  // A fresh engine pointed at a directory with prior artifacts must keep
  // batch sequences monotone past whatever is already committed there, or
  // a later recovery would misread the new records as stale (I413). The
  // recovery scan yields exactly those continuation points; the replay
  // payload is simply discarded.
  CAESAR_ASSIGN_OR_RETURN(RecoveryScan scan, ScanForRecovery(options));
  auto manager =
      std::unique_ptr<DurabilityManager>(new DurabilityManager(options));
  manager->last_committed_seq_ = scan.next_batch_seq - 1;
  if (scan.checkpoint_found) {
    manager->last_checkpoint_tick_ = scan.checkpoint.last_tick;
    manager->cadence_anchored_ = true;
  }
  CAESAR_ASSIGN_OR_RETURN(
      manager->writer_,
      WalWriter::Open(options, scan.next_segment_seq, &manager->counters_));
  return manager;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::OpenAfterRecovery(
    const DurabilityOptions& options, const RecoveryScan& scan,
    Timestamp last_checkpoint_tick, int64_t replayed_events) {
  auto manager =
      std::unique_ptr<DurabilityManager>(new DurabilityManager(options));
  manager->last_committed_seq_ = scan.next_batch_seq - 1;
  manager->counters_.recovery_replayed_events = replayed_events;
  manager->counters_.torn_tail_truncations = scan.torn_tail_truncations;
  if (scan.checkpoint_found || !scan.batches.empty()) {
    manager->last_checkpoint_tick_ = last_checkpoint_tick;
    manager->cadence_anchored_ = true;
  }
  CAESAR_ASSIGN_OR_RETURN(
      manager->writer_,
      WalWriter::Open(options, scan.next_segment_seq, &manager->counters_));
  return manager;
}

Status DurabilityManager::AppendTick(Timestamp t, const EventPtr* events,
                                     size_t n) {
  if (!cadence_anchored_) {
    // First tick ever logged anchors the checkpoint cadence so the first
    // checkpoint lands one interval into the stream, wherever it starts.
    last_checkpoint_tick_ = t;
    cadence_anchored_ = true;
  }
  return writer_->Append(EncodeTickRecord(pending_batch_seq(), t, events, n),
                         "wal_append");
}

Status DurabilityManager::CommitBatch(std::string_view snapshot) {
  CAESAR_RETURN_IF_ERROR(writer_->Append(
      EncodeCommitRecord(pending_batch_seq(), snapshot), "wal_commit"));
  if (options_.fsync == FsyncPolicy::kBatch) {
    CAESAR_RETURN_IF_ERROR(writer_->Sync());
  }
  ++last_committed_seq_;
  return writer_->MaybeRotate();
}

bool DurabilityManager::ShouldCheckpoint(Timestamp t) const {
  return options_.mode == DurabilityMode::kWalCheckpoint &&
         cadence_anchored_ &&
         t - last_checkpoint_tick_ >= options_.checkpoint_interval_ticks;
}

Status DurabilityManager::WriteCheckpoint(Timestamp t,
                                          std::string engine_state) {
  // Rotate first so the checkpoint can truthfully say "batches beyond me
  // start at wal_seq": the fresh segment holds nothing committed yet.
  uint64_t new_seg = writer_->segment_seq() + 1;
  CAESAR_RETURN_IF_ERROR(writer_->Rotate(new_seg));
  CheckpointInfo info;
  info.batch_seq = last_committed_seq_;
  info.wal_seq = new_seg;
  info.last_tick = t;
  info.payload = std::move(engine_state);
  CAESAR_RETURN_IF_ERROR(WriteCheckpointFile(options_.dir, info,
                                             options_.crash_hook,
                                             &counters_.fsyncs));
  ++counters_.checkpoints_written;
  last_checkpoint_tick_ = t;
  return RetireOldArtifacts(options_.dir, 2);
}

}  // namespace caesar
