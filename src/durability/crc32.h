// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320 — the zlib/PNG
// variant). Every durability artifact (WAL record, checkpoint payload) is
// framed with its CRC so recovery can tell a torn or corrupted tail from a
// valid record without trusting file sizes.

#ifndef CAESAR_DURABILITY_CRC32_H_
#define CAESAR_DURABILITY_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace caesar {

// Checksum of `size` bytes at `data`. `seed` chains incremental updates:
// Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace caesar

#endif  // CAESAR_DURABILITY_CRC32_H_
