// DurabilityManager: the engine-facing facade over the WAL and checkpoint
// machinery. The engine serializes its own state (it owns the internals);
// the manager owns sequencing, framing, group commit, rotation, retention,
// and the recovery scan. Everything here runs on the scheduler thread.

#ifndef CAESAR_DURABILITY_MANAGER_H_
#define CAESAR_DURABILITY_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "durability/checkpoint.h"
#include "durability/durability.h"
#include "durability/wal.h"

namespace caesar {

// Everything Engine::Recover needs from disk, in one deterministic scan:
// the newest valid checkpoint (if any), the committed WAL batches beyond
// it, the recovery diagnostics, and where to continue writing.
struct RecoveryScan {
  bool checkpoint_found = false;
  CheckpointInfo checkpoint;
  std::vector<WalBatch> batches;  // batch_seq ascending
  std::vector<Diagnostic> diagnostics;  // I410/I411/I412/I413
  int64_t torn_tail_truncations = 0;
  int64_t checkpoints_skipped = 0;
  uint64_t next_batch_seq = 1;
  uint64_t next_segment_seq = 1;
};

Result<RecoveryScan> ScanForRecovery(const DurabilityOptions& options);

class DurabilityManager {
 public:
  // Fresh engine: starts a new segment after anything already in the
  // directory (never appends to, or clobbers, prior artifacts — recovery
  // reads them, a fresh start writes beside them).
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options);

  // Recovered engine: continues at the sequence numbers the scan produced,
  // carrying the recovery counters forward.
  static Result<std::unique_ptr<DurabilityManager>> OpenAfterRecovery(
      const DurabilityOptions& options, const RecoveryScan& scan,
      Timestamp last_checkpoint_tick, int64_t replayed_events);

  // WAL-append of one tick's admitted events (write-ahead: called before
  // the tick is processed). Fails under kAlways fsync errors or an armed
  // crash hook.
  Status AppendTick(Timestamp t, const EventPtr* events, size_t n);

  // Seals the current Run batch with the engine's ingest snapshot and
  // group-commits per the fsync policy. Also size-rotates the segment.
  Status CommitBatch(std::string_view snapshot);

  // True when the checkpoint cadence is due at tick `t` (kWalCheckpoint
  // only; evaluated at Run batch boundaries).
  bool ShouldCheckpoint(Timestamp t) const;

  // Rotates the WAL, publishes a checkpoint of `engine_state` covering
  // everything committed so far, and applies retention.
  Status WriteCheckpoint(Timestamp t, std::string engine_state);

  // Sequence number the batch currently being appended will commit as.
  uint64_t pending_batch_seq() const { return last_committed_seq_ + 1; }

  // Highest batch sequence sealed by a commit record (durable under the
  // fsync policy). After recovery this is where the client resumes input.
  uint64_t durable_batch_seq() const { return last_committed_seq_; }

  const DurabilityCounters& counters() const { return counters_; }
  const DurabilityOptions& options() const { return options_; }

 private:
  DurabilityManager(DurabilityOptions options) : options_(std::move(options)) {}

  DurabilityOptions options_;
  std::unique_ptr<WalWriter> writer_;
  DurabilityCounters counters_;
  uint64_t last_committed_seq_ = 0;
  Timestamp last_checkpoint_tick_ = 0;
  bool cadence_anchored_ = false;
};

}  // namespace caesar

#endif  // CAESAR_DURABILITY_MANAGER_H_
