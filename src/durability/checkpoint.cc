#include "durability/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "durability/crc32.h"
#include "durability/serde.h"
#include "durability/wal.h"

namespace caesar {

namespace {

constexpr uint64_t kCheckpointMagic = 0x31504B4353454143ULL;  // "CAESCKP1"
constexpr uint32_t kCheckpointVersion = 1;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

uint64_t ParseCheckpointSeq(const std::string& filename) {
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".ckpt";
  if (filename.size() <= prefix.size() + suffix.size()) return 0;
  if (filename.compare(0, prefix.size(), prefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return 0;
  }
  std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    uint64_t seq = ParseCheckpointSeq(name);
    if (seq > 0) checkpoints.emplace_back(seq, name);
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  return checkpoints;
}

Status SyncFd(int fd, int64_t* fsyncs, const std::string& what) {
  if (::fsync(fd) != 0) return Errno(what);
  ++*fsyncs;
  return Status::Ok();
}

Status SyncDir(const std::string& dir, int64_t* fsyncs) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("checkpoint: open dir " + dir);
  Status status = SyncFd(fd, fsyncs, "checkpoint: fsync dir");
  ::close(fd);
  return status;
}

// Decodes one checkpoint file; non-ok means reject the candidate.
Status DecodeCheckpoint(const std::string& data, uint64_t expected_seq,
                        CheckpointInfo* info) {
  StateReader r(data);
  uint64_t magic = r.U64();
  uint32_t version = r.U32();
  info->batch_seq = r.U64();
  info->wal_seq = r.U64();
  info->last_tick = r.I64();
  uint32_t len = r.U32();
  uint32_t crc = r.U32();
  if (!r.ok() || magic != kCheckpointMagic || version != kCheckpointVersion) {
    return Status::DataLoss("unreadable checkpoint header");
  }
  if (info->batch_seq != expected_seq) {
    return Status::DataLoss("checkpoint sequence does not match its name");
  }
  if (len != r.remaining()) {
    return Status::DataLoss("checkpoint payload length mismatch");
  }
  info->payload = data.substr(data.size() - len);
  if (Crc32(info->payload) != crc) {
    return Status::DataLoss("checkpoint payload failed its checksum");
  }
  return Status::Ok();
}

}  // namespace

std::string CheckpointFileName(uint64_t batch_seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%010llu.ckpt",
                static_cast<unsigned long long>(batch_seq));
  return buf;
}

Status WriteCheckpointFile(const std::string& dir, const CheckpointInfo& info,
                           const CrashHook& crash_hook, int64_t* fsyncs) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("checkpoint: cannot create directory " + dir +
                            ": " + ec.message());
  }
  StateWriter w;
  w.U64(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  w.U64(info.batch_seq);
  w.U64(info.wal_seq);
  w.I64(info.last_tick);
  w.U32(static_cast<uint32_t>(info.payload.size()));
  w.U32(Crc32(info.payload));
  std::string bytes = w.Take();
  bytes += info.payload;

  std::string final_name = CheckpointFileName(info.batch_seq);
  std::string tmp_path =
      (std::filesystem::path(dir) / (final_name + ".tmp")).string();
  std::string final_path =
      (std::filesystem::path(dir) / final_name).string();

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("checkpoint: open " + tmp_path);
  size_t to_write = bytes.size();
  if (crash_hook && crash_hook("checkpoint_write")) {
    to_write /= 2;  // simulated kill mid-write: half a tmp file remains
  }
  const char* p = bytes.data();
  size_t n = to_write;
  while (n > 0) {
    ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("checkpoint: write " + tmp_path);
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  if (to_write != bytes.size()) {
    ::close(fd);
    return Status::DataLoss("crash injected at checkpoint_write");
  }
  Status status = SyncFd(fd, fsyncs, "checkpoint: fsync " + tmp_path);
  ::close(fd);
  CAESAR_RETURN_IF_ERROR(status);
  if (crash_hook && crash_hook("checkpoint_publish")) {
    // Tmp complete but never renamed: recovery must ignore it.
    return Status::DataLoss("crash injected at checkpoint_publish");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("checkpoint: rename " + tmp_path);
  }
  return SyncDir(dir, fsyncs);
}

Result<CheckpointScanResult> FindLatestCheckpoint(const std::string& dir) {
  CheckpointScanResult result;
  if (!std::filesystem::exists(dir)) return result;
  // Stale tmp files are debris from an interrupted publication; the
  // protocol never reads them, so clear them out.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  auto checkpoints = ListCheckpoints(dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    const auto& [seq, name] = *it;
    std::string path = (std::filesystem::path(dir) / name).string();
    std::string data;
    {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      data = buf.str();
    }
    CheckpointInfo info;
    Status decoded = DecodeCheckpoint(data, seq, &info);
    if (decoded.ok()) {
      result.found = true;
      result.latest = std::move(info);
      return result;
    }
    ++result.skipped_corrupt;
    Diagnostic diag = MakeDiag(DiagCode::kI411CheckpointCrcMismatch,
                               decoded.message() + "; skipped");
    diag.source = name;
    result.diagnostics.push_back(std::move(diag));
  }
  return result;
}

Status RetireOldArtifacts(const std::string& dir, int keep_checkpoints) {
  if (!std::filesystem::exists(dir)) return Status::Ok();
  auto checkpoints = ListCheckpoints(dir);
  if (checkpoints.empty()) return Status::Ok();
  size_t keep = std::max(keep_checkpoints, 1);
  std::error_code ec;
  // Delete checkpoints beyond the retention window (oldest first).
  while (checkpoints.size() > keep) {
    std::filesystem::remove(
        std::filesystem::path(dir) / checkpoints.front().second, ec);
    checkpoints.erase(checkpoints.begin());
  }
  // The oldest retained checkpoint bounds how far back replay can ever
  // start; segments strictly below its wal_seq are unreachable.
  std::string path =
      (std::filesystem::path(dir) / checkpoints.front().second).string();
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = buf.str();
  }
  CheckpointInfo info;
  if (!DecodeCheckpoint(data, checkpoints.front().first, &info).ok()) {
    return Status::Ok();  // leave everything for recovery to sort out
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "wal-";
    constexpr std::string_view suffix = ".log";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    uint64_t seq = std::strtoull(
        name.substr(prefix.size(),
                    name.size() - prefix.size() - suffix.size())
            .c_str(),
        nullptr, 10);
    if (seq > 0 && seq < info.wal_seq) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  return Status::Ok();
}

}  // namespace caesar
