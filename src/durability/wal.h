// Segmented, CRC-checksummed write-ahead log for admitted events.
//
// On-disk layout (all integers little-endian, see durability/serde.h):
//
//   wal-<seq, 10 digits>.log
//     [u64 magic "CAESWAL1"][u32 version][u64 segment_seq]   file header
//     [u32 len][u32 crc32(payload)][payload]                 record, repeated
//
// Record payloads start with a one-byte type tag:
//   kWalRecordTick   [u64 batch_seq][i64 tick][u32 n][n x event]
//       The admitted (post-ReorderBuffer) events of one scheduler tick,
//       written before the tick is processed (write-*ahead*).
//   kWalRecordCommit [u64 batch_seq][engine-defined snapshot bytes]
//       Seals one Run batch (group commit). Only ticks covered by a commit
//       record are replayed on recovery; an unsealed suffix belongs to a Run
//       that never returned OK and is discarded.
//
// A batch may span segment rotations. Recovery scans segments in sequence
// order, truncates a torn or corrupt tail at the last valid record boundary
// (I410 / I412), and skips records at or below the recovery horizon (I413,
// e.g. a duplicated tail record).

#ifndef CAESAR_DURABILITY_WAL_H_
#define CAESAR_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "durability/durability.h"
#include "event/event.h"

namespace caesar {

inline constexpr uint8_t kWalRecordTick = 1;
inline constexpr uint8_t kWalRecordCommit = 2;

// Record payload encoders (framing and checksums are WalWriter's job).
std::string EncodeTickRecord(uint64_t batch_seq, Timestamp tick,
                             const EventPtr* events, size_t n);
std::string EncodeCommitRecord(uint64_t batch_seq, std::string_view snapshot);

// "wal-0000000001.log" — also the Diagnostic::source recovery reports use.
std::string WalSegmentFileName(uint64_t seq);

// Appends framed records to segment files, rotating at size thresholds and
// checkpoint boundaries. Counters are bumped on the caller's
// DurabilityCounters (scheduler thread only).
class WalWriter {
 public:
  // Opens (creates) segment `segment_seq` in options.dir for appending.
  static Result<std::unique_ptr<WalWriter>> Open(
      const DurabilityOptions& options, uint64_t segment_seq,
      DurabilityCounters* counters);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Writes one framed record; fsyncs under FsyncPolicy::kAlways. The crash
  // hook is consulted with `crash_point` first — when it fires, a torn
  // prefix of the record is left on disk and DataLoss is returned.
  Status Append(std::string_view payload, std::string_view crash_point);

  // fsync of the current segment (group commit under kBatch).
  Status Sync();

  // Rotates to segment `new_seq` (> segment_seq()). Used at checkpoints so
  // the log can be truncated at the checkpoint horizon, and after the size
  // threshold.
  Status Rotate(uint64_t new_seq);
  // Rotate to the next sequence iff the current segment exceeds
  // options.segment_bytes.
  Status MaybeRotate();

  uint64_t segment_seq() const { return seq_; }

 private:
  WalWriter(DurabilityOptions options, DurabilityCounters* counters)
      : options_(std::move(options)), counters_(counters) {}

  Status OpenSegment(uint64_t seq);
  Status CloseSegment();

  DurabilityOptions options_;
  DurabilityCounters* counters_;
  int fd_ = -1;
  uint64_t seq_ = 0;
  uint64_t segment_offset_ = 0;
};

// One committed Run batch reassembled from the log.
struct WalBatch {
  uint64_t batch_seq = 0;
  // (tick, admitted events) in append order.
  std::vector<std::pair<Timestamp, EventBatch>> ticks;
  // The commit record's engine-defined snapshot bytes.
  std::string snapshot;
};

struct WalScanResult {
  std::vector<WalBatch> batches;  // committed, batch_seq > min_batch_seq
  uint64_t max_batch_seq = 0;     // highest committed seq seen anywhere
  uint64_t next_segment_seq = 1;  // 1 + highest segment file present
  int64_t torn_tail_truncations = 0;  // I410 tail truncations performed
  std::vector<Diagnostic> diagnostics;  // I410/I412/I413, deterministic
};

// Scans segments with seq >= from_segment_seq (0 = all) in ascending order,
// reassembling committed batches above `min_batch_seq` (the checkpoint
// horizon). Torn or corrupt tails are physically truncated at the last
// valid record boundary; scanning stops at the first corruption — sealed
// batches before it are still returned. A missing directory yields an empty
// result (fresh start).
Result<WalScanResult> ScanWal(const std::string& dir,
                              uint64_t from_segment_seq,
                              uint64_t min_batch_seq);

// Highest wal segment sequence present in `dir` (0 when none or the
// directory does not exist).
uint64_t MaxWalSegmentSeq(const std::string& dir);

}  // namespace caesar

#endif  // CAESAR_DURABILITY_WAL_H_
