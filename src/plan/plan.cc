#include "plan/plan.h"

#include <sstream>

namespace caesar {

OpChain OpChain::Clone() const {
  OpChain clone;
  clone.ops.reserve(ops.size());
  for (const auto& op : ops) clone.ops.push_back(op->Clone());
  return clone;
}

std::string OpChain::DebugString() const {
  std::ostringstream os;
  for (size_t i = 0; i < ops.size(); ++i) {
    os << "  " << i + 1 << ". " << ops[i]->DebugString() << "\n";
  }
  return os.str();
}

CompiledQuery CompiledQuery::Clone() const {
  CompiledQuery clone;
  clone.query_index = query_index;
  clone.name = name;
  clone.deriving = deriving;
  clone.contexts = contexts;
  clone.context_mask = context_mask;
  clone.anchors = anchors;
  clone.input_types = input_types;
  clone.output_type = output_type;
  clone.guards.reserve(guards.size());
  for (const OpChain& guard : guards) clone.guards.push_back(guard.Clone());
  clone.chain = chain.Clone();
  return clone;
}

std::string CompiledQuery::DebugString() const {
  std::ostringstream os;
  os << (deriving ? "[deriving] " : "[processing] ") << name << "\n";
  for (const OpChain& guard : guards) {
    os << " guard:\n" << guard.DebugString();
  }
  os << chain.DebugString();
  return os.str();
}

ExecutablePlan ExecutablePlan::Clone() const {
  ExecutablePlan clone;
  clone.registry = registry;
  clone.num_contexts = num_contexts;
  clone.default_context = default_context;
  clone.context_names = context_names;
  clone.partition_by = partition_by;
  clone.deriving.reserve(deriving.size());
  for (const CompiledQuery& query : deriving) {
    clone.deriving.push_back(query.Clone());
  }
  clone.processing.reserve(processing.size());
  for (const CompiledQuery& query : processing) {
    clone.processing.push_back(query.Clone());
  }
  return clone;
}

std::string ExecutablePlan::DebugString() const {
  std::ostringstream os;
  for (const CompiledQuery& query : deriving) os << query.DebugString();
  for (const CompiledQuery& query : processing) os << query.DebugString();
  return os.str();
}

}  // namespace caesar
