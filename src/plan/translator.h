// Model-to-plan translation (Section 4.2, Table 1, Fig. 5/6).
//
// Phase 1 (implied CONTEXT clauses become mandatory) lives in
// CaesarModel::Normalize. This module implements Phase 2: every query
// becomes a chain of algebra operators, and chains are ordered by their
// produce/consume type dependencies into a combined plan.
//
// The optimizer's plan-shape decisions (Section 5) are realized as
// PlanOptions: the non-optimized shape follows Fig. 6(a) — pattern, filter,
// context window, projection — while push_down_context_windows produces
// Fig. 6(b) with the context window at the bottom of each chain, which lets
// the executor suspend the entire chain when the context is inactive.
//
// The context-independent baseline (`context_independent`) strips shared
// context derivation and instead equips every query with private guard
// chains that re-derive its contexts into a query-private context vector —
// the hard-coded-context strategy of state-of-the-art engines the paper
// compares against.

#ifndef CAESAR_PLAN_TRANSLATOR_H_
#define CAESAR_PLAN_TRANSLATOR_H_

#include "common/status.h"
#include "plan/plan.h"
#include "query/model.h"

namespace caesar {

// Plan-shape options chosen by the optimizer (or forced by benchmarks).
struct PlanOptions {
  // Context window push-down (Section 5.2). Off = Fig. 6(a), on = Fig. 6(b).
  bool push_down_context_windows = true;

  // Push WHERE conjuncts into the sequence matcher as position predicates
  // (classical predicate push-down; conjuncts referencing negated variables
  // are always pushed because they define the negation condition).
  bool push_predicates_into_pattern = true;

  // Forces the context window to a specific position in the chain
  // (0 = bottom). -1 = follow push_down_context_windows. Used by the
  // Theorem-1 cost experiments.
  int force_cw_position = -1;

  // Context-independent baseline (see header comment).
  bool context_independent = false;

  // Default WITHIN bound (ticks) for SEQ patterns that do not specify one.
  Timestamp default_within = 300;
};

// Translates a normalized model into an executable plan. Registers derived
// and composite event types in the model's TypeRegistry.
Result<ExecutablePlan> TranslateModel(const CaesarModel& model,
                                      const PlanOptions& options);

}  // namespace caesar

#endif  // CAESAR_PLAN_TRANSLATOR_H_
