// Executable query plans (Section 4.2).
//
// Each query translates to a chain of algebra operators executed bottom-up
// (Table 1). A chain processes a batch by feeding it through the operators
// in order; when the batch becomes empty the remaining operators are skipped
// — with the context window at the bottom of the chain (push-down) this
// skip IS the suspension of irrelevant queries the optimizer is after.
//
// In the context-independent baseline each query additionally carries
// private "guard" chains: clones of the context deriving operators that
// maintain a query-private context vector, re-deriving the context the query
// would otherwise share (Section 5.3: "each context processing query has to
// run its respective context deriving queries separately").

#ifndef CAESAR_PLAN_PLAN_H_
#define CAESAR_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "event/schema.h"

namespace caesar {

// A bottom-up chain of operators.
struct OpChain {
  std::vector<std::unique_ptr<Operator>> ops;

  OpChain Clone() const;
  std::string DebugString() const;
};

// One executable query.
struct CompiledQuery {
  int query_index = -1;   // index into CaesarModel::queries()
  std::string name;
  bool deriving = false;  // context deriving query?

  // Contexts this query belongs to (OR semantics). Used by the runtime for
  // window-transition bookkeeping (history reset); the cost gating itself is
  // done by the ContextWindow operator inside `chain`.
  std::vector<int> contexts;
  uint64_t context_mask = 0;
  // History anchors parallel to `contexts`: partial matches and complex
  // events of this query may span back to the anchor window's activation
  // time (identity when the query's windows are not grouped).
  std::vector<int> anchors;

  // Event types this query consumes / produces (for topological ordering).
  std::vector<TypeId> input_types;
  TypeId output_type = kInvalidTypeId;

  // Context-independent baseline only: private derivation guards, executed
  // over the raw input before `chain`, writing a query-private context
  // vector.
  std::vector<OpChain> guards;

  OpChain chain;

  CompiledQuery Clone() const;
  std::string DebugString() const;
};

// The full executable plan for a model.
struct ExecutablePlan {
  const TypeRegistry* registry = nullptr;
  int num_contexts = 0;
  int default_context = 0;
  std::vector<std::string> context_names;
  std::vector<std::string> partition_by;

  // Topologically ordered by type dependencies, within each phase.
  std::vector<CompiledQuery> deriving;
  std::vector<CompiledQuery> processing;

  ExecutablePlan Clone() const;
  std::string DebugString() const;

  int total_queries() const {
    return static_cast<int>(deriving.size() + processing.size());
  }
};

}  // namespace caesar

#endif  // CAESAR_PLAN_PLAN_H_
