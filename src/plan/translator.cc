#include "plan/translator.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/aggregate_op.h"
#include "algebra/basic_ops.h"
#include "algebra/context_ops.h"
#include "algebra/pattern_op.h"
#include "common/logging.h"
#include "expr/analysis.h"
#include "expr/compiled.h"

namespace caesar {

namespace {

// Pattern variables with resolved types/schemas, one per pattern item.
struct ResolvedPattern {
  BindingSet bindings;                    // one var per item (incl. negated)
  std::vector<TypeId> item_types;
  std::vector<std::string> var_names;     // synthesized when anonymous
  std::vector<int> positive_items;        // indices of non-negated items
};

Result<ResolvedPattern> ResolvePattern(const PatternSpec& pattern,
                                       const TypeRegistry& registry,
                                       const std::string& query_label) {
  ResolvedPattern resolved;
  for (size_t i = 0; i < pattern.items.size(); ++i) {
    const PatternItem& item = pattern.items[i];
    TypeId type_id = registry.Lookup(item.event_type);
    if (type_id == kInvalidTypeId) {
      return Status::NotFound(query_label + ": unknown event type " +
                              item.event_type);
    }
    std::string var =
        item.variable.empty() ? "_" + std::to_string(i) : item.variable;
    resolved.bindings.Add({var, type_id, &registry.type(type_id).schema});
    resolved.item_types.push_back(type_id);
    resolved.var_names.push_back(var);
    if (!item.negated) resolved.positive_items.push_back(static_cast<int>(i));
  }
  return resolved;
}

// Rewrites attribute references for evaluation against the flattened
// composite match schema ("<var>.<attr>" attribute names). Bare references
// are resolved to the unique positive variable exposing the attribute.
Result<ExprPtr> RewriteForComposite(const ExprPtr& expr,
                                    const ResolvedPattern& resolved,
                                    const std::vector<bool>& item_negated) {
  switch (expr->kind()) {
    case Expr::Kind::kConstant:
      return expr;
    case Expr::Kind::kAttrRef: {
      const auto& attr = static_cast<const AttrRefExpr&>(*expr);
      std::string var = attr.variable();
      if (var.empty()) {
        int index = resolved.bindings.ResolveBareAttr(attr.attribute());
        if (index == -1) {
          return Status::InvalidArgument("unknown attribute: " +
                                         attr.attribute());
        }
        if (index == -2) {
          return Status::InvalidArgument("ambiguous attribute: " +
                                         attr.attribute());
        }
        var = resolved.var_names[index];
        if (item_negated[index]) {
          return Status::InvalidArgument(
              "attribute of negated variable used outside the pattern: " +
              attr.attribute());
        }
      } else {
        int index = resolved.bindings.IndexOfVar(var);
        if (index < 0) {
          return Status::InvalidArgument("unknown pattern variable: " + var);
        }
        if (item_negated[index]) {
          return Status::InvalidArgument(
              "negated variable used outside the pattern: " + var);
        }
      }
      return MakeAttrRef("", var + "." + attr.attribute());
    }
    case Expr::Kind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(*expr);
      CAESAR_ASSIGN_OR_RETURN(
          ExprPtr left,
          RewriteForComposite(binary.left(), resolved, item_negated));
      CAESAR_ASSIGN_OR_RETURN(
          ExprPtr right,
          RewriteForComposite(binary.right(), resolved, item_negated));
      return MakeBinary(binary.op(), std::move(left), std::move(right));
    }
  }
  return Status::Internal("unreachable");
}

// Infers the output attribute name for a DERIVE argument.
std::string InferAttrName(const ExprPtr& arg, const std::string& given,
                          int index) {
  if (!given.empty()) return given;
  if (arg->kind() == Expr::Kind::kAttrRef) {
    return static_cast<const AttrRefExpr&>(*arg).attribute();
  }
  return "a" + std::to_string(index);
}

// Registers (or fetches) an event type, checking arity compatibility.
Result<TypeId> RegisterDerivedType(TypeRegistry* registry,
                                   const std::string& name,
                                   std::vector<Attribute> attributes,
                                   const std::string& query_label) {
  TypeId existing = registry->Lookup(name);
  if (existing != kInvalidTypeId) {
    const Schema& schema = registry->type(existing).schema;
    if (schema.num_attributes() != static_cast<int>(attributes.size())) {
      return Status::FailedPrecondition(
          query_label + ": derived type " + name +
          " already registered with a different schema");
    }
    return existing;
  }
  return registry->Register(name, std::move(attributes));
}

// Builds everything per query; shared between the normal path and the
// guard-construction path of the context-independent baseline.
class QueryTranslator {
 public:
  QueryTranslator(const CaesarModel& model, const PlanOptions& options)
      : model_(model), options_(options), registry_(model.registry()) {}

  // Translates query `qi` into a CompiledQuery (without guards).
  Result<CompiledQuery> Translate(int qi) {
    const Query& query = model_.query(qi);
    std::string label =
        query.name.empty() ? "query #" + std::to_string(qi) : query.name;

    CompiledQuery compiled;
    compiled.query_index = qi;
    compiled.name = label;
    compiled.deriving = query.IsContextDeriving();
    for (const std::string& context : query.contexts) {
      int id = model_.ContextIndex(context);
      CAESAR_CHECK_GE(id, 0);
      compiled.contexts.push_back(id);
      compiled.context_mask |= uint64_t{1} << id;
    }
    if (query.context_anchors.empty()) {
      compiled.anchors = compiled.contexts;  // identity
    } else {
      for (const std::string& anchor : query.context_anchors) {
        int id = model_.ContextIndex(anchor);
        CAESAR_CHECK_GE(id, 0);
        compiled.anchors.push_back(id);
      }
    }

    const PatternSpec& pattern = *query.pattern;
    CAESAR_ASSIGN_OR_RETURN(ResolvedPattern resolved,
                            ResolvePattern(pattern, *registry_, label));
    compiled.input_types = resolved.item_types;
    std::vector<bool> item_negated;
    for (const PatternItem& item : pattern.items) {
      item_negated.push_back(item.negated);
    }

    // Build the pattern/aggregate operator plus the post-pattern binding
    // (the schema downstream expressions are evaluated against).
    std::unique_ptr<Operator> source_op;
    BindingSet post_bindings;       // single variable
    ExprPtr post_where;             // WHERE part evaluated above the pattern
    switch (pattern.kind) {
      case PatternSpec::Kind::kEvent: {
        CAESAR_RETURN_IF_ERROR(BuildEventMatch(query, resolved, label,
                                               &source_op, &post_bindings));
        post_where = query.where;
        break;
      }
      case PatternSpec::Kind::kSeq: {
        CAESAR_RETURN_IF_ERROR(BuildSeq(query, resolved, label, &source_op,
                                        &post_bindings, &post_where));
        break;
      }
      case PatternSpec::Kind::kAggregate: {
        CAESAR_RETURN_IF_ERROR(BuildAggregate(query, resolved, label,
                                              &source_op, &post_bindings));
        post_where = query.where;
        break;
      }
    }

    // Filter above the pattern.
    std::unique_ptr<Operator> filter_op;
    if (post_where != nullptr) {
      CAESAR_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledExpr> predicate,
                              CompileShared(post_where, post_bindings));
      filter_op = std::make_unique<FilterOp>(std::move(predicate));
    }

    // Projection (DERIVE clause). For SEQ queries the argument expressions
    // reference pattern variables; rewrite them against the composite
    // schema first.
    std::unique_ptr<Operator> projection_op;
    if (query.derive.has_value()) {
      DeriveSpec derive = *query.derive;
      if (pattern.kind == PatternSpec::Kind::kSeq) {
        for (ExprPtr& arg : derive.args) {
          CAESAR_ASSIGN_OR_RETURN(
              arg, RewriteForComposite(arg, resolved, item_negated));
        }
      }
      CAESAR_ASSIGN_OR_RETURN(
          projection_op, BuildProjection(derive, *query.derive, post_bindings,
                                         label));
      compiled.output_type =
          static_cast<ProjectionOp*>(projection_op.get())->output_type();
    }

    // Context window operator.
    std::unique_ptr<Operator> cw_op;
    {
      std::string description;
      for (size_t i = 0; i < query.contexts.size(); ++i) {
        if (i > 0) description += ", ";
        description += query.contexts[i];
      }
      cw_op = std::make_unique<ContextWindowOp>(compiled.contexts, description,
                                                compiled.anchors);
    }

    // Context action operators (Table 1).
    std::vector<std::unique_ptr<Operator>> action_ops;
    if (query.action != ContextAction::kNone) {
      int target = model_.ContextIndex(query.target_context);
      CAESAR_CHECK_GE(target, 0);
      switch (query.action) {
        case ContextAction::kInitiate:
          action_ops.push_back(std::make_unique<ContextInitOp>(
              target, query.target_context));
          break;
        case ContextAction::kTerminate:
          action_ops.push_back(std::make_unique<ContextTermOp>(
              target, query.target_context));
          break;
        case ContextAction::kSwitch:
          // SWITCH CONTEXT c -> CI_c, CT_curr for each current context.
          action_ops.push_back(std::make_unique<ContextInitOp>(
              target, query.target_context));
          for (size_t i = 0; i < compiled.contexts.size(); ++i) {
            if (compiled.contexts[i] != target) {
              action_ops.push_back(std::make_unique<ContextTermOp>(
                  compiled.contexts[i], query.contexts[i]));
            }
          }
          break;
        case ContextAction::kNone:
          break;
      }
    }

    // Assemble the chain. Non-optimized order (Fig. 6a): pattern, filter,
    // context window, projection, actions. Push-down moves CW to the bottom.
    std::vector<std::unique_ptr<Operator>> body;
    body.push_back(std::move(source_op));
    if (filter_op != nullptr) body.push_back(std::move(filter_op));
    int cw_position;  // index within `body` after insertion
    if (options_.force_cw_position >= 0) {
      cw_position = std::min<int>(options_.force_cw_position,
                                  static_cast<int>(body.size()));
    } else if (options_.push_down_context_windows) {
      cw_position = 0;
    } else {
      cw_position = static_cast<int>(body.size());  // above pattern+filter
    }
    body.insert(body.begin() + cw_position, std::move(cw_op));
    if (projection_op != nullptr) body.push_back(std::move(projection_op));
    for (auto& op : action_ops) body.push_back(std::move(op));
    compiled.chain.ops = std::move(body);
    return compiled;
  }

 private:
  // Event matching E(): pass-through pattern op; predicates stay in the
  // filter above.
  Status BuildEventMatch(const Query& query, const ResolvedPattern& resolved,
                         const std::string& label,
                         std::unique_ptr<Operator>* source_op,
                         BindingSet* post_bindings) {
    (void)query;
    (void)label;
    auto config = std::make_shared<PatternOpConfig>();
    PatternOpConfig::Position position;
    position.type_id = resolved.item_types[0];
    config->positions.push_back(std::move(position));
    config->output_type = resolved.item_types[0];
    config->pass_through = true;
    config->description = registry_->type(resolved.item_types[0]).name;
    *source_op = std::make_unique<PatternOp>(std::move(config));
    post_bindings->Add(resolved.bindings.var(0));
    return Status::Ok();
  }

  // SEQ pattern: builds the matcher (with negation/pushed predicates), the
  // composite output type, and the residual WHERE.
  Status BuildSeq(const Query& query, const ResolvedPattern& resolved,
                  const std::string& label,
                  std::unique_ptr<Operator>* source_op,
                  BindingSet* post_bindings, ExprPtr* post_where) {
    const PatternSpec& pattern = *query.pattern;
    std::vector<bool> item_negated;
    for (const PatternItem& item : pattern.items) {
      item_negated.push_back(item.negated);
    }
    if (pattern.items.back().negated) {
      return Status::Unimplemented(label + ": trailing NOT is not supported");
    }

    auto config = std::make_shared<PatternOpConfig>();
    config->within =
        pattern.within > 0 ? pattern.within : options_.default_within;
    config->description = pattern.ToString();
    for (size_t i = 0; i < pattern.items.size(); ++i) {
      PatternOpConfig::Position position;
      position.type_id = resolved.item_types[i];
      position.negated = pattern.items[i].negated;
      config->positions.push_back(std::move(position));
    }

    // Composite output type: attributes "<var>.<attr>" of positive items.
    std::vector<Attribute> attributes;
    for (int item : resolved.positive_items) {
      const Schema& schema = *resolved.bindings.var(item).schema;
      for (const Attribute& attr : schema.attributes()) {
        attributes.push_back(
            {resolved.var_names[item] + "." + attr.name, attr.type});
      }
    }
    CAESAR_ASSIGN_OR_RETURN(
        config->output_type,
        RegisterDerivedType(registry_, "$match_" + label,
                            std::move(attributes), label));
    post_bindings->Add(
        {"", config->output_type,
         &registry_->type(config->output_type).schema});

    // Classify WHERE conjuncts.
    ExprPtr residual;
    for (const ExprPtr& conjunct : SplitConjuncts(query.where)) {
      CAESAR_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledExpr> compiled,
                              CompileShared(conjunct, resolved.bindings));
      // Which variables does it reference? Negated ones?
      int negated_ref = -1;
      int max_positive = -1;
      bool multiple_negated = false;
      for (int var : compiled->referenced_vars()) {
        if (item_negated[var]) {
          if (negated_ref >= 0 && negated_ref != var) {
            multiple_negated = true;
          }
          negated_ref = var;
        } else {
          max_positive = std::max(max_positive, var);
        }
      }
      if (multiple_negated) {
        return Status::Unimplemented(
            label + ": predicate spans multiple negated variables: " +
            conjunct->ToString());
      }
      if (negated_ref >= 0) {
        // Negation condition: always lives in the matcher.
        config->positions[negated_ref].predicates.push_back(
            std::move(compiled));
        continue;
      }
      if (options_.push_predicates_into_pattern && max_positive >= 0) {
        config->positions[max_positive].predicates.push_back(
            std::move(compiled));
        continue;
      }
      residual = MakeConjunction(residual, conjunct);
    }
    if (residual != nullptr) {
      CAESAR_ASSIGN_OR_RETURN(
          *post_where, RewriteForComposite(residual, resolved, item_negated));
    }
    *source_op = std::make_unique<PatternOp>(std::move(config));
    return Status::Ok();
  }

  // Aggregate pattern: builds the aggregate operator and its output type.
  Status BuildAggregate(const Query& query, const ResolvedPattern& resolved,
                        const std::string& label,
                        std::unique_ptr<Operator>* source_op,
                        BindingSet* post_bindings) {
    const PatternSpec& pattern = *query.pattern;
    const Schema& input_schema = *resolved.bindings.var(0).schema;

    auto config = std::make_shared<AggregateOpConfig>();
    config->input_type = resolved.item_types[0];
    config->window_length =
        pattern.window_length > 0 ? pattern.window_length : 1;
    config->description = pattern.ToString();

    std::vector<Attribute> out_attrs;
    for (const std::string& attr_name : pattern.group_by) {
      int index = input_schema.IndexOf(attr_name);
      if (index < 0) {
        return Status::InvalidArgument(label + ": unknown group-by attribute " +
                                       attr_name);
      }
      config->group_by.push_back(index);
      out_attrs.push_back({attr_name, input_schema.attribute(index).type});
    }
    for (const AggregateSpec& agg : pattern.aggregates) {
      AggregateOpConfig::Agg compiled_agg;
      compiled_agg.func = agg.func;
      if (!agg.attribute.empty()) {
        compiled_agg.attr_index = input_schema.IndexOf(agg.attribute);
        if (compiled_agg.attr_index < 0) {
          return Status::InvalidArgument(
              label + ": unknown aggregate attribute " + agg.attribute);
        }
      } else if (agg.func != AggregateFunc::kCount) {
        return Status::InvalidArgument(label +
                                       ": only COUNT may omit its attribute");
      }
      config->aggregates.push_back(compiled_agg);
      out_attrs.push_back({agg.name, agg.func == AggregateFunc::kCount
                                         ? ValueType::kInt
                                         : ValueType::kDouble});
    }
    CAESAR_ASSIGN_OR_RETURN(
        config->output_type,
        RegisterDerivedType(registry_, "$agg_" + label, std::move(out_attrs),
                            label));
    const Schema* out_schema = &registry_->type(config->output_type).schema;
    post_bindings->Add(
        {resolved.var_names[0], config->output_type, out_schema});

    if (pattern.having != nullptr) {
      CAESAR_ASSIGN_OR_RETURN(config->having,
                              CompileShared(pattern.having, *post_bindings));
    }
    *source_op = std::make_unique<AggregateOp>(std::move(config));
    return Status::Ok();
  }

  // `derive` carries the (possibly composite-rewritten) argument
  // expressions; `original` is used for attribute-name inference so derived
  // attributes keep their user-visible names.
  Result<std::unique_ptr<Operator>> BuildProjection(
      const DeriveSpec& derive, const DeriveSpec& original,
      const BindingSet& bindings, const std::string& label) {
    std::vector<std::shared_ptr<const CompiledExpr>> args;
    std::vector<Attribute> attributes;
    for (size_t i = 0; i < derive.args.size(); ++i) {
      CAESAR_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledExpr> compiled,
                              CompileShared(derive.args[i], bindings));
      std::string name = InferAttrName(
          original.args[i],
          i < original.attr_names.size() ? original.attr_names[i] : "",
          static_cast<int>(i));
      attributes.push_back({name, compiled->result_type()});
      args.push_back(std::move(compiled));
    }
    // Duplicate output names get positional suffixes.
    std::set<std::string> seen;
    for (size_t i = 0; i < attributes.size(); ++i) {
      while (seen.count(attributes[i].name) > 0) {
        attributes[i].name += "_" + std::to_string(i);
      }
      seen.insert(attributes[i].name);
    }
    CAESAR_ASSIGN_OR_RETURN(
        TypeId output_type,
        RegisterDerivedType(registry_, derive.event_type,
                            std::move(attributes), label));
    return std::unique_ptr<Operator>(std::make_unique<ProjectionOp>(
        output_type, std::move(args), derive.ToString()));
  }

  // Compiles against `bindings`; for composite bindings qualified refs are
  // rewritten to "var.attr" bare references first.
  Result<std::shared_ptr<const CompiledExpr>> CompileShared(
      const ExprPtr& expr, const BindingSet& bindings) {
    CAESAR_ASSIGN_OR_RETURN(std::unique_ptr<CompiledExpr> compiled,
                            Compile(expr, bindings));
    return std::shared_ptr<const CompiledExpr>(std::move(compiled));
  }

  const CaesarModel& model_;
  const PlanOptions& options_;
  TypeRegistry* registry_;
};

// Topologically sorts queries by produced/consumed types. Queries only
// depend on queries in `producers` (mapping type -> producer position).
Result<std::vector<CompiledQuery>> TopoSort(
    std::vector<CompiledQuery> queries, const std::string& phase) {
  std::map<TypeId, std::vector<size_t>> producers;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].output_type != kInvalidTypeId) {
      producers[queries[i].output_type].push_back(i);
    }
  }
  // Kahn's algorithm.
  std::vector<std::set<size_t>> deps(queries.size());
  std::vector<std::vector<size_t>> dependents(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    for (TypeId input : queries[i].input_types) {
      auto it = producers.find(input);
      if (it == producers.end()) continue;
      for (size_t p : it->second) {
        if (p == i) continue;  // self-recursion is allowed (ignored)
        if (deps[i].insert(p).second) dependents[p].push_back(i);
      }
    }
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (deps[i].empty()) ready.push_back(i);
  }
  std::vector<CompiledQuery> sorted;
  sorted.reserve(queries.size());
  std::vector<bool> done(queries.size(), false);
  size_t cursor = 0;
  while (cursor < ready.size()) {
    size_t i = ready[cursor++];
    done[i] = true;
    sorted.push_back(std::move(queries[i]));
    for (size_t dependent : dependents[i]) {
      deps[dependent].erase(i);
      if (deps[dependent].empty() && !done[dependent]) {
        ready.push_back(dependent);
      }
    }
  }
  if (sorted.size() != queries.size()) {
    return Status::FailedPrecondition("cyclic type dependency among " + phase +
                                      " queries");
  }
  return sorted;
}

}  // namespace

Result<ExecutablePlan> TranslateModel(const CaesarModel& model,
                                      const PlanOptions& options) {
  ExecutablePlan plan;
  plan.registry = model.registry();
  plan.num_contexts = model.num_contexts();
  plan.default_context = model.ContextIndex(model.default_context());
  if (plan.default_context < 0) {
    return Status::FailedPrecondition("model not normalized");
  }
  for (const ContextType& context : model.contexts()) {
    plan.context_names.push_back(context.name);
  }
  plan.partition_by = model.partition_by();

  QueryTranslator translator(model, options);
  std::vector<CompiledQuery> deriving;
  std::vector<CompiledQuery> processing;
  // Queries may reference event types another query derives further down
  // the model ("forward references"); the derived type only becomes known
  // once its producer translates. Retry NotFound failures as long as a pass
  // makes progress.
  std::vector<int> pending;
  for (int qi = 0; qi < model.num_queries(); ++qi) pending.push_back(qi);
  while (!pending.empty()) {
    std::vector<int> failed;
    Status first_error;
    for (int qi : pending) {
      Result<CompiledQuery> compiled = translator.Translate(qi);
      if (!compiled.ok()) {
        if (compiled.status().code() != StatusCode::kNotFound) {
          return compiled.status();
        }
        if (first_error.ok()) first_error = compiled.status();
        failed.push_back(qi);
        continue;
      }
      if (compiled.value().deriving) {
        deriving.push_back(std::move(compiled).value());
      } else {
        processing.push_back(std::move(compiled).value());
      }
    }
    if (failed.size() == pending.size()) return first_error;  // no progress
    pending = std::move(failed);
  }

  // Deriving queries must not consume types produced by processing queries
  // (the scheduler runs derivation strictly before processing).
  {
    std::set<TypeId> processing_outputs;
    for (const CompiledQuery& query : processing) {
      if (query.output_type != kInvalidTypeId) {
        processing_outputs.insert(query.output_type);
      }
    }
    for (const CompiledQuery& query : deriving) {
      for (TypeId input : query.input_types) {
        if (processing_outputs.count(input) > 0) {
          return Status::FailedPrecondition(
              query.name +
              ": context deriving query consumes a type produced by a "
              "context processing query");
        }
      }
    }
  }

  CAESAR_ASSIGN_OR_RETURN(plan.deriving,
                          TopoSort(std::move(deriving), "deriving"));
  CAESAR_ASSIGN_OR_RETURN(plan.processing,
                          TopoSort(std::move(processing), "processing"));

  if (options.context_independent) {
    // Baseline: no shared context derivation. Every query re-derives its
    // contexts through private guard chains; context actions of the guards
    // update the query-private vector the chain's CW reads. The deriving
    // queries' event-derivation output is still needed globally (complex
    // events feeding other queries), so deriving chains stay, but their
    // actions now only affect per-query private state as well.
    //
    // Guard set for query Q: the chains of every deriving query whose action
    // targets one of Q's contexts (initiate/switch/terminate), i.e. the
    // queries that define Q's window bounds.
    std::vector<const CompiledQuery*> all;
    for (const CompiledQuery& query : plan.deriving) all.push_back(&query);
    auto attach_guards = [&](CompiledQuery* query) {
      for (const CompiledQuery* candidate : all) {
        if (candidate->query_index == query->query_index) continue;
        const Query& model_query = model.query(candidate->query_index);
        int target = model.ContextIndex(model_query.target_context);
        bool relevant = false;
        for (int c : query->contexts) {
          if (target == c) relevant = true;
          // A SWITCH out of c also bounds c's window.
          if (model_query.action == ContextAction::kSwitch &&
              std::find(candidate->contexts.begin(),
                        candidate->contexts.end(),
                        c) != candidate->contexts.end()) {
            relevant = true;
          }
        }
        if (relevant) query->guards.push_back(candidate->chain.Clone());
      }
    };
    for (CompiledQuery& query : plan.processing) attach_guards(&query);
    for (CompiledQuery& query : plan.deriving) attach_guards(&query);
  }

  return plan;
}

}  // namespace caesar
