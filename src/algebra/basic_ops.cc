#include "algebra/basic_ops.h"

#include <sstream>

namespace caesar {

FilterOp::FilterOp(std::shared_ptr<const CompiledExpr> predicate,
                   double selectivity)
    : Operator(Kind::kFilter),
      predicate_(std::move(predicate)),
      selectivity_(selectivity) {}

void FilterOp::Process(const EventBatch& input, EventBatch* output,
                       OpExecContext* ctx) {
  ctx->CountWork(input.size());
  for (const EventPtr& event : input) {
    if (predicate_->EvalBool(&event)) {
      output->push_back(event);
    }
  }
}

std::unique_ptr<Operator> FilterOp::Clone() const {
  return std::make_unique<FilterOp>(predicate_, selectivity_);
}

std::string FilterOp::DebugString() const {
  return "Filter: " + predicate_->ToString();
}

ProjectionOp::ProjectionOp(
    TypeId output_type, std::vector<std::shared_ptr<const CompiledExpr>> args,
    std::string description)
    : Operator(Kind::kProjection),
      output_type_(output_type),
      args_(std::move(args)),
      description_(std::move(description)) {}

void ProjectionOp::Process(const EventBatch& input, EventBatch* output,
                           OpExecContext* ctx) {
  ctx->CountWork(input.size());
  for (const EventPtr& event : input) {
    std::vector<Value> values;
    values.reserve(args_.size());
    for (const auto& arg : args_) {
      values.push_back(arg->Eval(&event));
    }
    output->push_back(MakeComplexEvent(output_type_, event->start_time(),
                                       event->end_time(), std::move(values)));
  }
}

std::unique_ptr<Operator> ProjectionOp::Clone() const {
  return std::make_unique<ProjectionOp>(output_type_, args_, description_);
}

std::string ProjectionOp::DebugString() const {
  std::ostringstream os;
  os << "Projection: ";
  if (!description_.empty()) {
    os << description_;
  } else {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) os << ", ";
      os << args_[i]->ToString();
    }
  }
  return os.str();
}

}  // namespace caesar
