#include "algebra/operator.h"

namespace caesar {

const char* OperatorKindName(Operator::Kind kind) {
  switch (kind) {
    case Operator::Kind::kPattern:
      return "Pattern";
    case Operator::Kind::kFilter:
      return "Filter";
    case Operator::Kind::kProjection:
      return "Projection";
    case Operator::Kind::kContextWindow:
      return "ContextWindow";
    case Operator::Kind::kContextInit:
      return "ContextInit";
    case Operator::Kind::kContextTerm:
      return "ContextTerm";
    case Operator::Kind::kAggregate:
      return "Aggregate";
    case Operator::Kind::kCompiledPattern:
      return "CompiledPattern";
  }
  return "?";
}

}  // namespace caesar
