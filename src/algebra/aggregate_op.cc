#include "algebra/aggregate_op.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/logging.h"
#include "durability/serde.h"

namespace caesar {

namespace {

size_t HashKey(const std::vector<Value>& key) {
  size_t hash = 0xcbf29ce484222325ULL;
  for (const Value& value : key) {
    hash = (hash ^ value.Hash()) * 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

AggregateOp::AggregateOp(std::shared_ptr<const AggregateOpConfig> config)
    : Operator(Kind::kAggregate), config_(std::move(config)) {
  CAESAR_CHECK_GT(config_->window_length, 0);
  CAESAR_CHECK(!config_->aggregates.empty());
}

void AggregateOp::Process(const EventBatch& input, EventBatch* output,
                          OpExecContext* ctx) {
  const auto& cfg = *config_;
  for (const EventPtr& event : input) {
    if (event->type_id() != cfg.input_type) continue;
    ctx->CountWork(1);

    // Group lookup / creation.
    std::vector<Value> key;
    key.reserve(cfg.group_by.size());
    for (int attr : cfg.group_by) key.push_back(event->value(attr));
    size_t hash = HashKey(key);
    std::vector<Group>& bucket = groups_[hash];
    Group* group = nullptr;
    for (Group& candidate : bucket) {
      if (candidate.key == key) {
        group = &candidate;
        break;
      }
    }
    if (group == nullptr) {
      bucket.emplace_back();
      group = &bucket.back();
      group->key = std::move(key);
      group->sums.assign(cfg.aggregates.size(), 0.0);
    }

    // Insert the sample and evict expired ones.
    Sample sample;
    sample.time = event->time();
    sample.values.reserve(cfg.aggregates.size());
    for (const auto& agg : cfg.aggregates) {
      double v = 0.0;
      if (agg.attr_index >= 0) {
        const Value& value = event->value(agg.attr_index);
        v = value.is_numeric() ? value.ToDouble() : 0.0;
      }
      sample.values.push_back(v);
    }
    for (size_t a = 0; a < cfg.aggregates.size(); ++a) {
      group->sums[a] += sample.values[a];
    }
    group->samples.push_back(std::move(sample));
    Evict(group, event->time() - cfg.window_length);

    // Emit when HAVING passes.
    std::vector<Value> outputs = ComputeOutputs(*group);
    EventPtr result = MakeEvent(cfg.output_type, event->time(),
                                std::move(outputs));
    if (cfg.having != nullptr) {
      ctx->CountWork(1);
      if (!cfg.having->EvalBool(&result)) continue;
    }
    output->push_back(std::move(result));
  }
}

void AggregateOp::Evict(Group* group, Timestamp horizon) {
  while (!group->samples.empty() && group->samples.front().time <= horizon) {
    const Sample& old = group->samples.front();
    for (size_t a = 0; a < config_->aggregates.size(); ++a) {
      group->sums[a] -= old.values[a];
    }
    group->samples.pop_front();
  }
}

std::vector<Value> AggregateOp::ComputeOutputs(const Group& group) const {
  const auto& cfg = *config_;
  std::vector<Value> outputs = group.key;
  outputs.reserve(group.key.size() + cfg.aggregates.size());
  int64_t count = static_cast<int64_t>(group.samples.size());
  for (size_t a = 0; a < cfg.aggregates.size(); ++a) {
    switch (cfg.aggregates[a].func) {
      case AggregateFunc::kCount:
        outputs.push_back(Value(count));
        break;
      case AggregateFunc::kSum:
        outputs.push_back(Value(group.sums[a]));
        break;
      case AggregateFunc::kAvg:
        outputs.push_back(
            Value(count == 0 ? 0.0 : group.sums[a] / count));
        break;
      case AggregateFunc::kMin:
      case AggregateFunc::kMax: {
        double best = cfg.aggregates[a].func == AggregateFunc::kMin
                          ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
        for (const Sample& sample : group.samples) {
          best = cfg.aggregates[a].func == AggregateFunc::kMin
                     ? std::min(best, sample.values[a])
                     : std::max(best, sample.values[a]);
        }
        outputs.push_back(Value(count == 0 ? 0.0 : best));
        break;
      }
    }
  }
  return outputs;
}

void AggregateOp::Reset() { groups_.clear(); }

void AggregateOp::SaveState(StateWriter* w) const {
  // Buckets are emitted in hash order (the unordered_map's own order is
  // not byte-stable); within a bucket, vector order is preserved. Sums are
  // saved bit-exact so incremental AVG/SUM keep their exact rounding
  // history across a recovery.
  std::map<size_t, const std::vector<Group>*> ordered;
  for (const auto& [hash, bucket] : groups_) ordered[hash] = &bucket;
  w->U32(static_cast<uint32_t>(ordered.size()));
  for (const auto& [hash, bucket] : ordered) {
    w->U64(hash);
    w->U32(static_cast<uint32_t>(bucket->size()));
    for (const Group& group : *bucket) {
      w->U32(static_cast<uint32_t>(group.key.size()));
      for (const Value& v : group.key) WriteValue(w, v);
      w->U32(static_cast<uint32_t>(group.samples.size()));
      for (const Sample& sample : group.samples) {
        w->I64(sample.time);
        w->U32(static_cast<uint32_t>(sample.values.size()));
        for (double v : sample.values) w->F64(v);
      }
      w->U32(static_cast<uint32_t>(group.sums.size()));
      for (double v : group.sums) w->F64(v);
    }
  }
}

Status AggregateOp::LoadState(StateReader* r) {
  groups_.clear();
  uint32_t n_buckets = r->U32();
  for (uint32_t b = 0; r->ok() && b < n_buckets; ++b) {
    uint64_t hash = r->U64();
    uint32_t n_groups = r->U32();
    std::vector<Group>& bucket = groups_[static_cast<size_t>(hash)];
    for (uint32_t g = 0; r->ok() && g < n_groups; ++g) {
      Group group;
      uint32_t n_key = r->U32();
      for (uint32_t i = 0; r->ok() && i < n_key; ++i) {
        group.key.push_back(ReadValue(r));
      }
      uint32_t n_samples = r->U32();
      for (uint32_t i = 0; r->ok() && i < n_samples; ++i) {
        Sample sample;
        sample.time = r->I64();
        uint32_t n_values = r->U32();
        for (uint32_t v = 0; r->ok() && v < n_values; ++v) {
          sample.values.push_back(r->F64());
        }
        group.samples.push_back(std::move(sample));
      }
      uint32_t n_sums = r->U32();
      for (uint32_t i = 0; r->ok() && i < n_sums; ++i) {
        group.sums.push_back(r->F64());
      }
      bucket.push_back(std::move(group));
    }
  }
  return r->ok() ? Status::Ok()
                 : Status::DataLoss("truncated aggregate state");
}

void AggregateOp::ExpireBefore(Timestamp t) {
  for (auto& [hash, bucket] : groups_) {
    for (Group& group : bucket) Evict(&group, t - 1);
  }
}

std::unique_ptr<Operator> AggregateOp::Clone() const {
  return std::make_unique<AggregateOp>(config_);
}

std::string AggregateOp::DebugString() const {
  return "Aggregate: " + config_->description;
}

}  // namespace caesar
