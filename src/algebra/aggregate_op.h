// Sliding-window grouped aggregation (extension to the paper's six-operator
// algebra; see query/model.h for why the Linear Road context deriving
// queries need it — e.g. "over 50 cars per minute with an average speed
// below 40 mph" in Section 1).
//
// For each input event, the group identified by the group-by attributes is
// updated, events older than `window_length` are evicted, and — if the
// HAVING predicate passes (or is absent) — one output event is emitted with
// the group key and the aggregate values.

#ifndef CAESAR_ALGEBRA_AGGREGATE_OP_H_
#define CAESAR_ALGEBRA_AGGREGATE_OP_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator.h"
#include "expr/compiled.h"
#include "query/model.h"

namespace caesar {

// Immutable configuration shared across per-partition clones.
struct AggregateOpConfig {
  TypeId input_type = kInvalidTypeId;
  TypeId output_type = kInvalidTypeId;
  std::vector<int> group_by;  // attribute indices of the input schema
  struct Agg {
    AggregateFunc func;
    int attr_index = -1;  // -1 for COUNT(*)
  };
  std::vector<Agg> aggregates;
  Timestamp window_length = 0;
  // HAVING predicate compiled against the output schema (group-by columns
  // followed by aggregate columns); may be null.
  std::shared_ptr<const CompiledExpr> having;
  std::string description;
};

class AggregateOp : public Operator {
 public:
  explicit AggregateOp(std::shared_ptr<const AggregateOpConfig> config);

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  void Reset() override;
  void ExpireBefore(Timestamp t) override;
  std::string DebugString() const override;
  void SaveState(StateWriter* w) const override;
  Status LoadState(StateReader* r) override;
  double UnitCost() const override { return 2.0; }

  const AggregateOpConfig& config() const { return *config_; }
  size_t num_groups() const { return groups_.size(); }

 private:
  struct Sample {
    Timestamp time;
    std::vector<double> values;  // one per aggregate (0 for COUNT)
  };
  struct Group {
    std::vector<Value> key;
    std::deque<Sample> samples;
    // Incrementally maintained sums (COUNT/SUM/AVG); MIN/MAX scan samples.
    std::vector<double> sums;
  };

  void Evict(Group* group, Timestamp horizon);
  std::vector<Value> ComputeOutputs(const Group& group) const;

  std::shared_ptr<const AggregateOpConfig> config_;
  std::unordered_map<size_t, std::vector<Group>> groups_;  // by key hash
};

}  // namespace caesar

#endif  // CAESAR_ALGEBRA_AGGREGATE_OP_H_
