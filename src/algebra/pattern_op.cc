#include "algebra/pattern_op.h"

#include <algorithm>

#include "common/logging.h"
#include "durability/serde.h"

namespace caesar {

PatternOp::PatternOp(std::shared_ptr<const PatternOpConfig> config)
    : Operator(Kind::kPattern), config_(std::move(config)) {
  const auto& positions = config_->positions;
  CAESAR_CHECK(!positions.empty());
  for (int i = 0; i < static_cast<int>(positions.size()); ++i) {
    if (positions[i].negated) {
      negated_positions_.push_back(i);
    } else {
      positive_positions_.push_back(i);
    }
  }
  CAESAR_CHECK(!positive_positions_.empty())
      << "pattern needs at least one positive position";
  // Trailing negation is unsupported (no bounded emission point).
  CAESAR_CHECK(!positions.back().negated)
      << "trailing NOT is not supported: " << config_->description;
  if (positions.size() > 1) {
    CAESAR_CHECK_GT(config_->within, 0)
        << "multi-position pattern needs WITHIN: " << config_->description;
  }
  neg_buffers_.resize(negated_positions_.size());
  if (config_->pass_through) {
    CAESAR_CHECK_EQ(positions.size(), 1u);
    CAESAR_CHECK(!positions[0].negated);
  }
}

void PatternOp::Process(const EventBatch& input, EventBatch* output,
                        OpExecContext* ctx) {
  if (config_->pass_through) {
    // Event matching E(): forward events of the type, applying any pushed
    // predicates.
    ctx->CountWork(input.size());
    const auto& position = config_->positions[0];
    for (const EventPtr& event : input) {
      if (event->type_id() != position.type_id) continue;
      bool pass = true;
      for (const auto& predicate : position.predicates) {
        ctx->CountWork(1);
        if (!predicate->EvalBool(&event)) {
          pass = false;
          break;
        }
      }
      if (pass) output->push_back(event);
    }
    return;
  }
  if (!input.empty()) {
    // Expire once per batch; extensions re-check the WITHIN bound per event,
    // so late expiry never admits a stale match.
    Expire(input.front()->time());
  }
  for (const EventPtr& event : input) {
    ProcessEvent(event, output, ctx);
  }
}

void PatternOp::ProcessEvent(const EventPtr& event, EventBatch* output,
                             OpExecContext* ctx) {
  ctx->CountWork(1);
  const auto& positions = config_->positions;

  // 1. Feed negation buffers.
  for (size_t n = 0; n < negated_positions_.size(); ++n) {
    if (positions[negated_positions_[n]].type_id == event->type_id()) {
      neg_buffers_[n].push_back(event);
    }
  }

  // 2. Try to start a fresh partial at the first positive position.
  std::vector<Partial> created;
  {
    int first = positive_positions_[0];
    if (positions[first].type_id == event->type_id()) {
      Partial fresh;
      fresh.bound.resize(positions.size());
      if (PredicatesPass(fresh, first, event, ctx)) {
        fresh.bound[first] = event;
        fresh.next_positive = 1;
        fresh.first_time = event->time();
        fresh.last_time = event->time();
        created.push_back(std::move(fresh));
      }
    }
  }

  // 3. Try to extend existing partials (snapshot size: an event extends a
  // given partial chain at most once).
  size_t existing = partials_.size();
  for (size_t i = 0; i < existing; ++i) {
    Partial& partial = partials_[i];
    ctx->CountWork(1);
    int slot = positive_positions_[partial.next_positive];
    if (positions[slot].type_id != event->type_id()) continue;
    if (event->time() <= partial.last_time) continue;  // strict ordering
    if (event->time() - partial.first_time > config_->within) continue;
    if (!PredicatesPass(partial, slot, event, ctx)) continue;
    Partial extended = partial;
    extended.bound[slot] = event;
    ++extended.next_positive;
    extended.last_time = event->time();
    created.push_back(std::move(extended));
  }

  // 4. Completed partials emit (after negation checks); the rest are kept.
  for (Partial& partial : created) {
    if (partial.next_positive ==
        static_cast<int>(positive_positions_.size())) {
      if (NegationsPass(&partial, ctx)) {
        EmitMatch(partial, output);
      }
    } else {
      partials_.push_back(std::move(partial));
    }
  }
}

bool PatternOp::PredicatesPass(const Partial& partial, int position,
                               const EventPtr& candidate, OpExecContext* ctx) {
  const auto& predicates = config_->positions[position].predicates;
  if (predicates.empty()) return true;
  // Bind the candidate temporarily on a scratch copy of the slot array.
  // (The partial's vector is const here; copy pointers cheaply.)
  std::vector<EventPtr> bound = partial.bound;
  if (bound.empty()) bound.resize(config_->positions.size());
  bound[position] = candidate;
  for (const auto& predicate : predicates) {
    ctx->CountWork(1);
    if (!predicate->EvalBool(bound.data())) return false;
  }
  return true;
}

bool PatternOp::NegationsPass(Partial* partial, OpExecContext* ctx) {
  const auto& positions = config_->positions;
  for (size_t n = 0; n < negated_positions_.size(); ++n) {
    int neg_pos = negated_positions_[n];
    // Surrounding positive components.
    Timestamp lo, hi;
    bool lo_closed = false;
    int prev_positive = -1;
    for (int p = neg_pos - 1; p >= 0; --p) {
      if (!positions[p].negated) {
        prev_positive = p;
        break;
      }
    }
    int next_positive = -1;
    for (int p = neg_pos + 1; p < static_cast<int>(positions.size()); ++p) {
      if (!positions[p].negated) {
        next_positive = p;
        break;
      }
    }
    CAESAR_CHECK_GE(next_positive, 0);  // no trailing NOT
    Timestamp next_time = partial->bound[next_positive]->time();
    if (prev_positive >= 0) {
      lo = partial->bound[prev_positive]->time();  // open
    } else {
      lo = next_time - config_->within;  // leading NOT: closed look-back
      lo_closed = true;
    }
    hi = next_time;  // open

    for (const EventPtr& candidate : neg_buffers_[n]) {
      ctx->CountWork(1);
      Timestamp t = candidate->time();
      if (t >= hi) break;  // buffers are time-ordered
      if (lo_closed ? t < lo : t <= lo) continue;
      const auto& predicates = positions[neg_pos].predicates;
      bool matches = true;
      partial->bound[neg_pos] = candidate;
      for (const auto& predicate : predicates) {
        ctx->CountWork(1);
        if (!predicate->EvalBool(partial->bound.data())) {
          matches = false;
          break;
        }
      }
      partial->bound[neg_pos] = nullptr;
      if (matches) return false;  // a negated event blocks the match
    }
  }
  return true;
}

void PatternOp::EmitMatch(const Partial& partial, EventBatch* output) {
  std::vector<Value> values;
  Timestamp start = partial.bound[positive_positions_[0]]->start_time();
  Timestamp end = partial.bound[positive_positions_.back()]->end_time();
  for (int slot : positive_positions_) {
    const EventPtr& component = partial.bound[slot];
    values.insert(values.end(), component->values().begin(),
                  component->values().end());
  }
  output->push_back(
      MakeComplexEvent(config_->output_type, start, end, std::move(values)));
}

void PatternOp::Expire(Timestamp now) { ExpireBefore(now - config_->within); }

void PatternOp::Reset() {
  partials_.clear();
  for (auto& buffer : neg_buffers_) buffer.clear();
}

void PatternOp::ExpireBefore(Timestamp t) {
  // Partials are kept in creation order, which is not first_time order
  // (an extension inherits an older first_time), so expiry scans them all.
  std::erase_if(partials_,
                [t](const Partial& partial) { return partial.first_time < t; });
  for (auto& buffer : neg_buffers_) {
    while (!buffer.empty() && buffer.front()->time() < t) {
      buffer.pop_front();
    }
  }
}

std::unique_ptr<Operator> PatternOp::Clone() const {
  return std::make_unique<PatternOp>(config_);
}

size_t PatternOp::negation_buffer_size() const {
  size_t total = 0;
  for (const auto& buffer : neg_buffers_) total += buffer.size();
  return total;
}

std::string PatternOp::DebugString() const {
  return "Pattern: " + config_->description;
}

void PatternOp::SaveState(StateWriter* w) const {
  w->U32(static_cast<uint32_t>(partials_.size()));
  for (const Partial& partial : partials_) {
    w->U32(static_cast<uint32_t>(partial.bound.size()));
    for (const EventPtr& event : partial.bound) {
      w->Bool(event != nullptr);
      if (event != nullptr) WriteEvent(w, *event);
    }
    w->U32(static_cast<uint32_t>(partial.next_positive));
    w->I64(partial.first_time);
    w->I64(partial.last_time);
  }
  w->U32(static_cast<uint32_t>(neg_buffers_.size()));
  for (const auto& buffer : neg_buffers_) {
    w->U32(static_cast<uint32_t>(buffer.size()));
    for (const EventPtr& event : buffer) WriteEvent(w, *event);
  }
}

Status PatternOp::LoadState(StateReader* r) {
  partials_.clear();
  uint32_t n_partials = r->U32();
  for (uint32_t i = 0; r->ok() && i < n_partials; ++i) {
    Partial partial;
    uint32_t n_slots = r->U32();
    if (!r->ok() || n_slots != config_->positions.size()) {
      return Status::DataLoss("pattern partial does not match the plan");
    }
    partial.bound.resize(n_slots);
    for (uint32_t s = 0; r->ok() && s < n_slots; ++s) {
      if (!r->Bool()) continue;
      partial.bound[s] = ReadEvent(r);
      if (partial.bound[s] == nullptr) {
        return Status::DataLoss("malformed pattern partial event");
      }
    }
    partial.next_positive = static_cast<int>(r->U32());
    partial.first_time = r->I64();
    partial.last_time = r->I64();
    partials_.push_back(std::move(partial));
  }
  uint32_t n_buffers = r->U32();
  if (!r->ok() || n_buffers != neg_buffers_.size()) {
    return Status::DataLoss("negation buffers do not match the plan");
  }
  for (auto& buffer : neg_buffers_) {
    buffer.clear();
    uint32_t n = r->U32();
    for (uint32_t i = 0; r->ok() && i < n; ++i) {
      EventPtr event = ReadEvent(r);
      if (event == nullptr) {
        return Status::DataLoss("malformed negation buffer event");
      }
      buffer.push_back(std::move(event));
    }
  }
  return r->ok() ? Status::Ok()
                 : Status::DataLoss("truncated pattern matcher state");
}

double PatternOp::UnitCost() const {
  // Sequence matching scales with the number of positions; single-event
  // matching is a type probe.
  return config_->pass_through
             ? 1.0
             : 2.0 * static_cast<double>(config_->positions.size());
}

double PatternOp::Selectivity() const {
  return config_->pass_through ? 1.0 : 0.2;
}

}  // namespace caesar
