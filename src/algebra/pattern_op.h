// The pattern operator (Section 4.1): event matching E, sequence
// SEQ(E1, ..., En), and sequence with negation SEQ(S1, NOT E, S2).
//
// Semantics implemented (matching the paper's definitions):
//  - SEQ requires strictly increasing occurrence times of its positive
//    components and emits one composite event per qualifying combination
//    (skip-till-any-match: events between components are permitted).
//  - A negated position between two positives rejects a match if any event
//    of the negated type occurs strictly between the surrounding components
//    and satisfies the negation predicates.
//  - A leading negated position uses the look-back interval
//    [first.time - within, first.time) — "temporal constraints must define
//    the time interval within which the negated event may not occur".
//    Trailing negation is rejected at plan-build time.
//
// Every SEQ carries a WITHIN bound (maximum match span, also the retention
// horizon for partial matches and negation buffers); unbounded pattern state
// is never kept. WHERE conjuncts may be pushed into the matcher as
// per-position predicates (an optimizer rewrite); conjuncts referencing a
// negated variable always live here because they define the negation
// condition itself.
//
// Composite output events concatenate the attribute values of all positive
// components; the plan builder registers the composite schema with
// attributes named "<var>.<attr>".

#ifndef CAESAR_ALGEBRA_PATTERN_OP_H_
#define CAESAR_ALGEBRA_PATTERN_OP_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "expr/compiled.h"

namespace caesar {

// Immutable configuration shared by all per-partition clones.
struct PatternOpConfig {
  struct Position {
    TypeId type_id = kInvalidTypeId;
    bool negated = false;
    // For positive positions: predicates checked when this position binds
    // (each must be evaluable from positions bound so far).
    // For negated positions: the negation condition, checked at match
    // completion with the candidate negated event bound.
    std::vector<std::shared_ptr<const CompiledExpr>> predicates;
  };

  std::vector<Position> positions;
  // Composite output type (== the input type when pass_through).
  TypeId output_type = kInvalidTypeId;
  // Maximum span of a match; also state retention horizon. Must be > 0 for
  // multi-position patterns.
  Timestamp within = 0;
  // Single positive position, no negation: forward matching events as-is.
  bool pass_through = false;
  std::string description;
};

class PatternOp : public Operator {
 public:
  explicit PatternOp(std::shared_ptr<const PatternOpConfig> config);

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  void Reset() override;
  void ExpireBefore(Timestamp t) override;
  std::string DebugString() const override;
  void SaveState(StateWriter* w) const override;
  Status LoadState(StateReader* r) override;

  double UnitCost() const override;
  double Selectivity() const override;

  const PatternOpConfig& config() const { return *config_; }
  // Shared handle for the pattern compiler (compile/compiler.h), which
  // co-owns the config through the automaton it builds.
  std::shared_ptr<const PatternOpConfig> shared_config() const {
    return config_;
  }

  // Introspection for tests and the garbage collector.
  size_t num_partials() const { return partials_.size(); }
  size_t negation_buffer_size() const;

 private:
  // A partially assembled match. `bound` has one slot per position; only
  // positive positions are filled (negated slots are bound transiently
  // during the completion check).
  struct Partial {
    std::vector<EventPtr> bound;
    int next_positive = 0;       // index into positive_positions_
    Timestamp first_time = 0;    // time of the first bound component
    Timestamp last_time = -1;    // time of the latest bound component
  };

  void ProcessEvent(const EventPtr& event, EventBatch* output,
                    OpExecContext* ctx);

  // Returns true if `candidate` extends `partial` at positive slot
  // `position` (predicates pass). Does not mutate `partial`.
  bool PredicatesPass(const Partial& partial, int position,
                      const EventPtr& candidate, OpExecContext* ctx);

  // Completion-time negation check; true if no negated event blocks the
  // match.
  bool NegationsPass(Partial* partial, OpExecContext* ctx);

  void EmitMatch(const Partial& partial, EventBatch* output);

  void Expire(Timestamp now);

  std::shared_ptr<const PatternOpConfig> config_;
  std::vector<int> positive_positions_;  // position indices, in order
  std::vector<int> negated_positions_;
  std::deque<Partial> partials_;  // ordered by first_time (append order)
  // One buffer per entry of negated_positions_.
  std::vector<std::deque<EventPtr>> neg_buffers_;
};

}  // namespace caesar

#endif  // CAESAR_ALGEBRA_PATTERN_OP_H_
