#include "algebra/context_ops.h"

#include "common/logging.h"

namespace caesar {

ContextInitOp::ContextInitOp(int context_id, std::string context_name)
    : Operator(Kind::kContextInit),
      context_id_(context_id),
      context_name_(std::move(context_name)) {}

void ContextInitOp::Process(const EventBatch& input, EventBatch* output,
                            OpExecContext* ctx) {
  ctx->CountWork(input.size());
  for (const EventPtr& event : input) {
    // e.time = w_c.start (the window begins when the initiating event
    // completes).
    ctx->contexts->Initiate(context_id_, event->time());
    output->push_back(event);
  }
}

std::unique_ptr<Operator> ContextInitOp::Clone() const {
  return std::make_unique<ContextInitOp>(context_id_, context_name_);
}

std::string ContextInitOp::DebugString() const {
  return "ContextInit: " + context_name_;
}

ContextTermOp::ContextTermOp(int context_id, std::string context_name)
    : Operator(Kind::kContextTerm),
      context_id_(context_id),
      context_name_(std::move(context_name)) {}

void ContextTermOp::Process(const EventBatch& input, EventBatch* output,
                            OpExecContext* ctx) {
  ctx->CountWork(input.size());
  for (const EventPtr& event : input) {
    ctx->contexts->Terminate(context_id_, event->time());
    output->push_back(event);
  }
}

std::unique_ptr<Operator> ContextTermOp::Clone() const {
  return std::make_unique<ContextTermOp>(context_id_, context_name_);
}

std::string ContextTermOp::DebugString() const {
  return "ContextTerm: " + context_name_;
}

ContextWindowOp::ContextWindowOp(std::vector<int> context_ids,
                                 std::string description,
                                 std::vector<int> anchors)
    : Operator(Kind::kContextWindow),
      context_ids_(std::move(context_ids)),
      anchors_(std::move(anchors)),
      mask_(0),
      description_(std::move(description)) {
  CAESAR_CHECK(!context_ids_.empty());
  if (anchors_.empty()) anchors_ = context_ids_;  // identity anchors
  CAESAR_CHECK_EQ(anchors_.size(), context_ids_.size());
  for (int id : context_ids_) {
    CAESAR_CHECK_GE(id, 0);
    CAESAR_CHECK_LT(id, kMaxContexts);
    mask_ |= uint64_t{1} << id;
  }
}

void ContextWindowOp::Process(const EventBatch& input, EventBatch* output,
                              OpExecContext* ctx) {
  // The bit-vector probe is constant and negligible next to per-event
  // operator work (Section 5.1: "the CPU cost of these operators is
  // constant"), so it contributes no work units — the premise of Theorem 1
  // is that the context window costs the same wherever it sits in the plan.
  const ContextBitVector& contexts = *ctx->contexts;
  if (!contexts.AnyActive(mask_)) return;
  for (const EventPtr& event : input) {
    for (size_t i = 0; i < context_ids_.size(); ++i) {
      if (contexts.IsActive(context_ids_[i]) &&
          event->start_time() >= contexts.ActiveSince(anchors_[i])) {
        output->push_back(event);
        break;
      }
    }
  }
}

std::unique_ptr<Operator> ContextWindowOp::Clone() const {
  return std::make_unique<ContextWindowOp>(context_ids_, description_,
                                           anchors_);
}

std::string ContextWindowOp::DebugString() const {
  return "ContextWindow: " + description_;
}

}  // namespace caesar
