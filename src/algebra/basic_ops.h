// Filter and projection operators (Section 4.1):
//
//   FL_theta(I) = { e | e in I, e satisfies theta }
//   PR_{A,E}(I) = { e' | e'.type = E, e in I, e'.a = f_a(e) for a in A }
//
// Both operate on a single bound variable (either a raw input event or a
// composite pattern-match event; see pattern_op.h for the composite layout).

#ifndef CAESAR_ALGEBRA_BASIC_OPS_H_
#define CAESAR_ALGEBRA_BASIC_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "expr/compiled.h"

namespace caesar {

// Filter: passes events satisfying the predicate. The predicate is compiled
// against a single binding (the operator's input event).
class FilterOp : public Operator {
 public:
  // `predicate` must have been compiled against a one-variable BindingSet.
  // `selectivity` is the cost-model estimate (fraction of events passing).
  FilterOp(std::shared_ptr<const CompiledExpr> predicate,
           double selectivity = 0.5);

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  std::string DebugString() const override;
  double Selectivity() const override { return selectivity_; }

  const CompiledExpr& predicate() const { return *predicate_; }

 private:
  std::shared_ptr<const CompiledExpr> predicate_;
  double selectivity_;
};

// Projection: restricts/derives attributes and re-types the event
// (implements the DERIVE clause). Each argument expression is evaluated
// against the input event; the result event keeps the input's occurrence
// interval.
class ProjectionOp : public Operator {
 public:
  ProjectionOp(TypeId output_type,
               std::vector<std::shared_ptr<const CompiledExpr>> args,
               std::string description = "");

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  std::string DebugString() const override;

  TypeId output_type() const { return output_type_; }
  const std::vector<std::shared_ptr<const CompiledExpr>>& args() const {
    return args_;
  }

 private:
  TypeId output_type_;
  std::vector<std::shared_ptr<const CompiledExpr>> args_;
  std::string description_;
};

}  // namespace caesar

#endif  // CAESAR_ALGEBRA_BASIC_OPS_H_
