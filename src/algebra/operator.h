// The operator interface of the CAESAR algebra (Section 4.1).
//
// The algebra's six operators — pattern, filter, projection, context window,
// context initiation, context termination — plus the sliding-aggregate
// extension all implement Operator. Operators process event batches
// bottom-up in a query plan; stateful operators (pattern, aggregate) keep
// per-partition state, so plans are instantiated per partition via Clone().
//
// Work accounting: every operator adds its processed "work units" (events
// examined, partial matches extended, buffer entries scanned) to
// OpExecContext::ops_counter. This is the cost measure behind the CPU-cost
// experiments and the Theorem-1 test.

#ifndef CAESAR_ALGEBRA_OPERATOR_H_
#define CAESAR_ALGEBRA_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "runtime/context_vector.h"

namespace caesar {

class StateWriter;
class StateReader;

// Per-call execution environment handed to Operator::Process.
struct OpExecContext {
  // Context windows of the current partition; mutated by CI/CT operators.
  ContextBitVector* contexts = nullptr;
  const TypeRegistry* registry = nullptr;
  // Application time of the batch being processed.
  Timestamp now = 0;
  // Work-unit counter (see header comment); never null during execution.
  uint64_t* ops_counter = nullptr;

  void CountWork(uint64_t units) const { *ops_counter += units; }
};

// Base class for all algebra operators.
class Operator {
 public:
  enum class Kind : int8_t {
    kPattern,
    kFilter,
    kProjection,
    kContextWindow,
    kContextInit,
    kContextTerm,
    kAggregate,
    // Automaton-based replacement for kPattern (compile/); selected by
    // EngineOptions::pattern_engine, never emitted by the translator.
    kCompiledPattern,
  };

  explicit Operator(Kind kind) : kind_(kind) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  Kind kind() const { return kind_; }

  // Consumes `input` and appends results to `output`. Stateful operators may
  // retain partial state across calls. Events must arrive in non-decreasing
  // time order across calls.
  virtual void Process(const EventBatch& input, EventBatch* output,
                       OpExecContext* ctx) = 0;

  // Fresh-state copy for per-partition instantiation (configuration is
  // shared, state is not).
  virtual std::unique_ptr<Operator> Clone() const = 0;

  // Drops all partial state. Called when the context window scoping this
  // operator's query ends ("context history can be safely discarded").
  virtual void Reset() {}

  // Drops partial state derived from events older than `t` (garbage
  // collection / grouped-window history expiry).
  virtual void ExpireBefore(Timestamp t) { (void)t; }

  // One-line description for plan printing.
  virtual std::string DebugString() const = 0;

  // --- Durability hooks (durability/serde.h) ---
  // Serializes the operator's mutable state. Configuration is rebuilt from
  // the plan on recovery and never persisted; stateless operators write
  // nothing. Byte-stable for identical state (checkpoint determinism).
  virtual void SaveState(StateWriter* w) const { (void)w; }

  // Restores state produced by SaveState on an identically configured
  // fresh instance. Returns DataLoss on malformed bytes.
  virtual Status LoadState(StateReader* r) {
    (void)r;
    return Status::Ok();
  }

  // --- Cost model hooks (relative units; see optimizer/cost_model.h) ---

  // Expected CPU cost per input event.
  virtual double UnitCost() const { return 1.0; }

  // Expected ratio of output to input events.
  virtual double Selectivity() const { return 1.0; }

 private:
  Kind kind_;
};

const char* OperatorKindName(Operator::Kind kind);

}  // namespace caesar

#endif  // CAESAR_ALGEBRA_OPERATOR_H_
