// The context-specific operators unique to the CAESAR algebra
// (Section 4.1): context initiation CI_c, context termination CT_c, and
// context window CW_c.
//
// CI/CT consume the match stream of a context deriving query and update the
// partition's context bit vector; they pass their input through so a
// deriving query can feed further operators. CW passes exactly the events
// that occur during the current window of its context(s); its per-event cost
// is constant (one bit-vector probe), which is the premise of the context
// window push-down theorem (Theorem 1).

#ifndef CAESAR_ALGEBRA_CONTEXT_OPS_H_
#define CAESAR_ALGEBRA_CONTEXT_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"

namespace caesar {

// CI_c: on any input event, starts a window of context `context_id` (no-op
// if one already holds) and forwards the input unchanged.
class ContextInitOp : public Operator {
 public:
  ContextInitOp(int context_id, std::string context_name);

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  std::string DebugString() const override;

  int context_id() const { return context_id_; }

 private:
  int context_id_;
  std::string context_name_;
};

// CT_c: on any input event, ends the window of context `context_id` (re-
// activating the default context if none remains) and forwards the input.
class ContextTermOp : public Operator {
 public:
  ContextTermOp(int context_id, std::string context_name);

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  std::string DebugString() const override;

  int context_id() const { return context_id_; }

 private:
  int context_id_;
  std::string context_name_;
};

// CW_{c1,...}: passes an event iff some listed context is active AND the
// event's occurrence interval lies within that context's current window
// (a complex event spanning a window boundary is out of scope; Section 2's
// t ⊑ w applied to intervals).
class ContextWindowOp : public Operator {
 public:
  // `context_ids` is an OR-set: the query belongs to several contexts
  // (e.g. accident detection runs in both clear and congestion).
  // `anchors`, when non-empty, parallels `context_ids`: an event passes for
  // an active context if its occurrence interval starts no earlier than the
  // *anchor* context's activation time — grouped windows anchor at the
  // first grouped window of the oldest original window covering them, so
  // matches may span the grouped windows of one original but never beyond.
  ContextWindowOp(std::vector<int> context_ids, std::string description,
                  std::vector<int> anchors = {});

  void Process(const EventBatch& input, EventBatch* output,
               OpExecContext* ctx) override;
  std::unique_ptr<Operator> Clone() const override;
  std::string DebugString() const override;

  const std::vector<int>& context_ids() const { return context_ids_; }
  const std::vector<int>& anchors() const { return anchors_; }

  // Bit mask over context ids (for the router's AnyActive probe).
  uint64_t context_mask() const { return mask_; }

 private:
  std::vector<int> context_ids_;
  std::vector<int> anchors_;  // parallel to context_ids_
  uint64_t mask_;
  std::string description_;
};

}  // namespace caesar

#endif  // CAESAR_ALGEBRA_CONTEXT_OPS_H_
