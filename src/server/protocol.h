// The caesard request/response protocol, carried as JSON documents over
// either wire framing (server/wire.h).
//
// Requests are objects with a "cmd" field:
//
//   {"cmd":"ping"}
//   {"cmd":"register","tenant":"t1","model":"TYPE ...; QUERY ...;",
//    "options":{"threads":2,"scheduler":"stealing","pattern_engine":
//    "compiled","ingest":"reorder","reorder_slack":3,"metrics":"operator",
//    "gather_statistics":true,"optimize":true}}
//   {"cmd":"ingest","tenant":"t1","events":[["Tick",3,[1,7,0]], ...]}
//   {"cmd":"flush","tenant":"t1"}        drain everything incl. the open tick
//   {"cmd":"poll","tenant":"t1"}         collect outputs without draining
//   {"cmd":"stats","tenant":"t1","format":"json"|"prometheus",
//    "deterministic":true}
//   {"cmd":"teardown","tenant":"t1"}     flush, report, destroy
//   {"cmd":"list"}
//   {"cmd":"shutdown"}
//
// Responses always carry "ok". Failures add "code" — a stable I4xx
// diagnostic code (analysis/diagnostics.h; I420 backpressure, I421 unknown
// tenant, I422 duplicate tenant, I423 bad frame/request, I424 admission
// rejected) — and "error", a human message. Clients match on the code.
//
// Event rows are arrays:
//
//   [type_name, time, [values...]]                  point event
//   [type_name, start_time, end_time, [values...]]  interval event
//
// Values are JSON ints, doubles, strings, or null, positionally matching
// the type's schema. A row whose type name the tenant's registry does not
// know still decodes — to an out-of-range TypeId — so the *engine's*
// ingest policy classifies it (kUnknownType quarantine), exactly as it
// would an in-process event with a corrupt type id. This keeps a tenant
// fed garbage byte-identical, counters included, to a library run fed the
// same garbage.

#ifndef CAESAR_SERVER_PROTOCOL_H_
#define CAESAR_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "server/wire.h"

namespace caesar {

// Protocol revision, echoed by ping.
inline constexpr int kServerProtocolVersion = 1;

enum class ServerCmd : int8_t {
  kPing = 0,
  kRegister,
  kIngest,
  kFlush,
  kPoll,
  kStats,
  kTeardown,
  kList,
  kShutdown,
};

const char* ServerCmdName(ServerCmd cmd);
// Parses a cmd string; false on anything unknown.
bool ParseServerCmd(std::string_view name, ServerCmd* out);

// --- Event row codec -------------------------------------------------------

// Renders one event as a wire row. Events with an out-of-range type id
// (quarantined garbage) render with the reserved name "__unknown__".
JsonValue EncodeEventRow(const Event& event, const TypeRegistry& registry);

// Renders a whole batch as a JSON array of rows.
JsonValue EncodeEventBatch(const EventBatch& events,
                           const TypeRegistry& registry);

// Decodes one wire row against `registry`. Structurally broken rows (not
// an array, non-numeric time, bad value kinds) fail with a Status; an
// unknown type name succeeds with an out-of-range type id (see header
// comment).
Status DecodeEventRow(const JsonValue& row, const TypeRegistry& registry,
                      EventPtr* out);

// --- Response helpers ------------------------------------------------------

// {"ok":true} with room for more fields.
JsonValue OkResponse();

// {"ok":false,"code":code,"error":message}.
JsonValue ErrorResponse(const char* code, const std::string& message);

}  // namespace caesar

#endif  // CAESAR_SERVER_PROTOCOL_H_
