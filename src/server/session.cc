#include "server/session.h"

#include <utility>

#include "query/model.h"
#include "query/parser.h"
#include "runtime/observability.h"
#include "runtime/statistics.h"

namespace caesar {

SessionSerialRole TenantSession::serial_role;

Result<std::unique_ptr<TenantSession>> TenantSession::Create(
    const std::string& name, std::string_view model_text,
    SessionConfig config) {
  auto registry = std::make_unique<TypeRegistry>();

  ParseModelOptions parse_options;
  parse_options.source_name = name;
  Result<CaesarModel> model =
      ParseModel(model_text, registry.get(), parse_options);
  if (!model.ok()) return model.status();

  EngineOptions engine_options;
  engine_options.tenant = name;
  engine_options.shared_executor = config.shared_executor;
  engine_options.num_threads = 1;  // serial unless the pool overrides
  engine_options.pattern_engine = config.pattern_engine;
  engine_options.ingest_policy = config.ingest_policy;
  engine_options.reorder_slack = config.reorder_slack;
  engine_options.metrics = config.metrics;
  engine_options.gather_statistics = config.gather_statistics;
  // The strict analyzer is the admission gate: error-severity lint
  // diagnostics reject registration before any engine state exists.
  engine_options.analysis = AnalysisMode::kStrict;

  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(model.value(), config.plan, std::move(engine_options));
  if (!engine.ok()) return engine.status();

  return std::unique_ptr<TenantSession>(
      new TenantSession(name, std::move(registry),
                        std::move(engine).value(), std::move(config)));
}

Status TenantSession::Ingest(EventBatch events) {
  if (pending_.size() + events.size() > config_.max_pending_events) {
    return Status::OutOfRange(
        "pending buffer full: " + std::to_string(pending_.size()) +
        " buffered + " + std::to_string(events.size()) + " offered > limit " +
        std::to_string(config_.max_pending_events));
  }
  total_accepted_ += static_cast<int64_t>(events.size());
  for (EventPtr& event : events) pending_.push_back(std::move(event));
  return Status::Ok();
}

Status TenantSession::Drain(bool flush) {
  if (pending_.empty()) return Status::Ok();
  size_t runnable = pending_.size();
  if (!flush) {
    // Hold back the open tick: everything from the first event carrying
    // the maximum buffered time onward. A later ingest may still extend
    // that newest tick, and feeding the engine a partial tick would break
    // the tick-aligned-split determinism contract. Scanning for the max
    // (rather than trusting the back) keeps the rule correct for
    // disordered input too — a late or corrupt low-time straggler behind
    // the newest tick must not make the drain split it.
    Timestamp max_time = pending_[0]->time();
    size_t first_max = 0;
    for (size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i]->time() > max_time) {
        max_time = pending_[i]->time();
        first_max = i;
      }
    }
    runnable = first_max;
  }
  if (runnable == 0) return Status::Ok();

  EventBatch batch(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(runnable));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(runnable));
  Result<RunStats> stats = engine_->Run(batch, &outputs_);
  if (!stats.ok()) return stats.status();
  return Status::Ok();
}

EventBatch TenantSession::TakeOutputs() {
  EventBatch out;
  out.swap(outputs_);
  return out;
}

std::string TenantSession::ExportStats(bool prometheus,
                                       bool deterministic) const {
  StatisticsReport report = engine_->CollectStatistics();
  ExportOptions options;
  options.deterministic = deterministic;
  return prometheus ? StatisticsToPrometheus(report, options)
                    : StatisticsToJson(report, options);
}

}  // namespace caesar
