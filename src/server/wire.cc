#include "server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace caesar {

namespace {

// Parser depth cap: a fuzzer sending "[[[[..." must not exhaust the stack.
constexpr int kMaxJsonDepth = 64;

struct JsonParser {
  std::string_view text;
  size_t pos = 0;

  Status Error(const std::string& message) const {
    return Status::ParseError("json: byte " + std::to_string(pos) + ": " +
                              message);
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos >= text.size()) return Error("unexpected end of input");
    char c = text[pos];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        CAESAR_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text.substr(pos, 4) == "true") {
          pos += 4;
          *out = JsonValue::Bool(true);
          return Status::Ok();
        }
        return Error("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") {
          pos += 5;
          *out = JsonValue::Bool(false);
          return Status::Ok();
        }
        return Error("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") {
          pos += 4;
          *out = JsonValue::Null();
          return Status::Ok();
        }
        return Error("bad literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos;  // '{'
    *out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      if (pos >= text.size() || text[pos] != '"') {
        return Error("expected object key");
      }
      std::string key;
      CAESAR_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      CAESAR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos;  // '['
    *out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      CAESAR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos;  // '"'
    out->clear();
    while (true) {
      if (pos >= text.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return Error("unterminated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            CAESAR_RETURN_IF_ERROR(ParseHex4(&cp));
            // Surrogate pair?
            if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() &&
                text[pos] == '\\' && text[pos + 1] == 'u') {
              pos += 2;
              uint32_t lo = 0;
              CAESAR_RETURN_IF_ERROR(ParseHex4(&lo));
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return Error("invalid low surrogate");
              }
            }
            if (cp >= 0xD800 && cp <= 0xDFFF) {
              return Error("lone surrogate");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Error("bad escape");
        }
        continue;
      }
      if (c < 0x20) return Error("raw control character in string");
      out->push_back(static_cast<char>(c));
      ++pos;
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos + 4 > text.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos;
    if (Consume('-')) {
    }
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    bool is_double = false;
    if (pos < text.size() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") return Error("bad number");
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        *out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Out-of-range integers degrade to double below.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    *out = JsonValue::Double(d);
    return Status::Ok();
  }
};

// Round-trip double formatting shared by Dump: %.17g, then trimmed to the
// shortest representation that still parses back equal.
void AppendDouble(double v, std::string* out) {
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v) break;
  }
  out->append(buffer);
  // Ensure the token re-parses as a double, not an int (keeps kind stable
  // across a Dump/Parse round trip).
  if (out->find_first_of(".eE", out->size() - std::strlen(buffer)) ==
      std::string::npos) {
    out->append(".0");
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kInt:
      out->append(std::to_string(int_));
      return;
    case Kind::kDouble:
      AppendDouble(double_, out);
      return;
    case Kind::kString:
      out->append(JsonQuote(string_));
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : entries_) {
        if (!first) out->push_back(',');
        first = false;
        out->append(JsonQuote(key));
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  JsonParser parser{text};
  JsonValue value;
  CAESAR_RETURN_IF_ERROR(parser.ParseValue(&value, 0));
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return parser.Error("trailing garbage after document");
  }
  return value;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

Status WriteAllToSocket(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteBinaryFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxWirePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxWirePayload");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  char header[5];
  header[0] = static_cast<char>(kFrameMagic);
  header[1] = static_cast<char>(len & 0xFF);
  header[2] = static_cast<char>((len >> 8) & 0xFF);
  header[3] = static_cast<char>((len >> 16) & 0xFF);
  header[4] = static_cast<char>((len >> 24) & 0xFF);
  CAESAR_RETURN_IF_ERROR(WriteAllToSocket(fd, std::string_view(header, 5)));
  return WriteAllToSocket(fd, payload);
}

Status WriteJsonLine(int fd, std::string_view payload) {
  std::string line(payload);
  line.push_back('\n');
  return WriteAllToSocket(fd, line);
}

Status MessageReader::Fill(size_t need, bool* eof) {
  *eof = false;
  // Compact consumed bytes once they dominate the buffer.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  while (buffer_.size() - pos_ < need) {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (buffer_.size() == pos_) {
        *eof = true;
        return Status::Ok();
      }
      return Status::DataLoss("connection closed mid-message");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  return Status::Ok();
}

Status MessageReader::Next(std::string* payload, bool* binary, bool* eof) {
  bool fill_eof = false;
  CAESAR_RETURN_IF_ERROR(Fill(1, &fill_eof));
  if (fill_eof) {
    *eof = true;
    return Status::Ok();
  }
  *eof = false;
  unsigned char first = static_cast<unsigned char>(buffer_[pos_]);
  if (first == kFrameMagic) {
    *binary = true;
    CAESAR_RETURN_IF_ERROR(Fill(5, &fill_eof));
    if (fill_eof) return Status::DataLoss("connection closed mid-header");
    uint32_t len = static_cast<uint8_t>(buffer_[pos_ + 1]) |
                   (static_cast<uint32_t>(
                        static_cast<uint8_t>(buffer_[pos_ + 2]))
                    << 8) |
                   (static_cast<uint32_t>(
                        static_cast<uint8_t>(buffer_[pos_ + 3]))
                    << 16) |
                   (static_cast<uint32_t>(
                        static_cast<uint8_t>(buffer_[pos_ + 4]))
                    << 24);
    if (len > max_payload_) {
      return Status::OutOfRange("frame length " + std::to_string(len) +
                                " exceeds cap " +
                                std::to_string(max_payload_));
    }
    CAESAR_RETURN_IF_ERROR(Fill(5 + static_cast<size_t>(len), &fill_eof));
    if (fill_eof) return Status::DataLoss("connection closed mid-frame");
    payload->assign(buffer_, pos_ + 5, len);
    pos_ += 5 + static_cast<size_t>(len);
    return Status::Ok();
  }

  // Newline-JSON mode: everything up to the next '\n' is one message.
  *binary = false;
  size_t newline;
  while ((newline = buffer_.find('\n', pos_)) == std::string::npos) {
    if (buffer_.size() - pos_ > max_payload_) {
      return Status::OutOfRange("line exceeds payload cap");
    }
    size_t had = buffer_.size() - pos_;
    CAESAR_RETURN_IF_ERROR(Fill(had + 1, &fill_eof));
    if (fill_eof) return Status::DataLoss("connection closed mid-line");
  }
  payload->assign(buffer_, pos_, newline - pos_);
  // Tolerate CRLF debug clients.
  if (!payload->empty() && payload->back() == '\r') payload->pop_back();
  pos_ = newline + 1;
  return Status::Ok();
}

}  // namespace caesar
