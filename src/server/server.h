// caesard's network core: a loopback/TCP listener hosting many tenant
// sessions (server/session.h) over one shared worker pool, speaking the
// wire protocol of server/wire.h + server/protocol.h.
//
// Concurrency model, chosen for determinism over raw socket throughput:
//
//   * one accept thread, one handler thread per connection;
//   * ONE global session lock — every request handler and the background
//     drain loop serialize on it. This is what the shared ShardedExecutor
//     contract requires (two engines must never ExecuteTick at once), and
//     it makes multi-tenant interleavings linearizable: each tenant's
//     engine sees exactly the per-tenant event order the sockets carried.
//     Parallelism lives *inside* a tick (the pool's workers), not across
//     tenants.
//   * deterministic mode: no background drain; complete ticks run
//     synchronously inside the ingest request and derived events ride the
//     ingest/flush responses, so a socket-fed tenant is byte-comparable to
//     one batch Engine::Run over the same rows.
//   * throughput mode (default): a drain thread runs buffered ticks every
//     drain_interval_ms; clients collect derived events with poll.

#ifndef CAESAR_SERVER_SERVER_H_
#define CAESAR_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "runtime/executor.h"
#include "server/session.h"
#include "server/wire.h"

namespace caesar {

struct ServerOptions {
  // Bind address. Loopback by default: caesard trusts its peers.
  std::string host = "127.0.0.1";
  // TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;

  // Deterministic mode (see file comment).
  bool deterministic = false;

  // Width of the shared worker pool all tenant engines dispatch to.
  // 0 or 1 = serial engines, no pool.
  int executor_workers = 0;
  // Scheduler of the shared pool (pinned/stealing); pool mode is
  // server-wide because the pool is.
  SchedulerMode scheduler = DefaultSchedulerMode();

  // Admission bounds. max_pending_events is the per-tenant default and
  // also the hard cap on what a register request may ask for.
  size_t max_tenants = 64;
  size_t max_pending_events = 1u << 16;

  // Background drain cadence (throughput mode only).
  int drain_interval_ms = 20;

  // Transport cap on one message's payload bytes.
  uint32_t max_frame_bytes = kMaxWirePayload;

  Status Validate() const;
};

class CaesarServer {
 public:
  explicit CaesarServer(ServerOptions options);
  ~CaesarServer();

  CaesarServer(const CaesarServer&) = delete;
  CaesarServer& operator=(const CaesarServer&) = delete;

  // Binds, listens, and spawns the accept (and drain) threads.
  Status Start();

  // Requests shutdown (also triggered by the wire "shutdown" command);
  // safe from any thread, returns immediately.
  void RequestStop();
  bool stop_requested() const { return stop_.load(); }

  // Tears everything down: unblocks the accept loop and every connection,
  // joins all threads, destroys sessions before the pool. Idempotent.
  void Stop();

  // Blocks until RequestStop (wire shutdown or another thread), then
  // tears down via Stop().
  void Wait();

  // Listening port (after Start; resolves an ephemeral bind).
  int port() const { return port_; }

  size_t num_tenants() const;

  // Handles one already-parsed request document and returns the response
  // document. Public so tests can drive the protocol without a socket.
  JsonValue Handle(const JsonValue& request);

 private:
  void AcceptLoop();
  void DrainLoop();
  void ServeConnection(int fd);
  // Clears the fd slot so Stop never shuts down a recycled descriptor.
  void MarkConnectionDone(size_t slot);

  // Dispatches one raw payload: parse, shape-check, route. Never throws,
  // never crashes on hostile bytes — always returns a coded document.
  JsonValue DispatchPayload(std::string_view payload);

  // Command handlers; called with the session lock AND the session
  // serial role held (enforced by the clang thread-safety analysis —
  // the CI lint job builds with -Wthread-safety).
  JsonValue HandleRegister(const JsonValue& request)
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandleIngest(const JsonValue& request)
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandleFlush(const JsonValue& request)
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandlePoll(const JsonValue& request)
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandleStats(const JsonValue& request)
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandleTeardown(const JsonValue& request)
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandleList()
      CAESAR_REQUIRES(sessions_mutex_, TenantSession::serial_role);
  JsonValue HandlePing();

  // Looks up a session or returns null and fills *error with I421.
  TenantSession* FindTenant(const JsonValue& request, JsonValue* error)
      CAESAR_REQUIRES(sessions_mutex_);

  const ServerOptions options_;

  // Destroyed after sessions_ (declared first): engines borrow the pool.
  std::shared_ptr<ShardedExecutor> pool_;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::unique_ptr<TenantSession>> sessions_
      CAESAR_GUARDED_BY(sessions_mutex_);

  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stop_{false};
  std::mutex lifecycle_mutex_;
  bool stopped_ CAESAR_GUARDED_BY(lifecycle_mutex_) = false;  // Stop() ran
  std::condition_variable stop_cv_;

  std::thread accept_thread_;
  std::thread drain_thread_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::mutex conns_mutex_;
  std::vector<int> conn_fds_ CAESAR_GUARDED_BY(conns_mutex_);
  std::vector<std::thread> conn_threads_ CAESAR_GUARDED_BY(conns_mutex_);
};

}  // namespace caesar

#endif  // CAESAR_SERVER_SERVER_H_
