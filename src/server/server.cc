#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "server/protocol.h"

namespace caesar {
namespace {

// Tenant names end up in Prometheus labels, file-less logs, and map keys;
// keep them printable and bounded.
constexpr size_t kMaxTenantNameBytes = 128;

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > kMaxTenantNameBytes) return false;
  for (char c : name) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) return false;
  }
  return true;
}

bool ParseIngestPolicyName(const std::string& name, IngestPolicy* out) {
  if (name == "strict") {
    *out = IngestPolicy::kStrict;
  } else if (name == "drop") {
    *out = IngestPolicy::kDrop;
  } else if (name == "reorder") {
    *out = IngestPolicy::kReorder;
  } else {
    return false;
  }
  return true;
}

// Decodes the register request's "options" object into a SessionConfig.
// Strict: unknown keys and wrong kinds reject the whole registration, so a
// typo'd option never silently becomes a default.
Status ParseSessionConfig(const JsonValue* opts,
                          const ServerOptions& server_options,
                          SessionConfig* out) {
  out->max_pending_events = server_options.max_pending_events;
  if (opts == nullptr) return Status::Ok();
  if (!opts->is_object()) {
    return Status::InvalidArgument("\"options\" must be an object");
  }
  for (const auto& [key, value] : opts->entries()) {
    if (key == "pattern_engine") {
      if (!value.is_string() ||
          !ParsePatternEngine(value.string_value(), &out->pattern_engine)) {
        return Status::InvalidArgument(
            "pattern_engine must be \"interpreted\", \"compiled\", or "
            "\"auto\"");
      }
    } else if (key == "ingest") {
      if (!value.is_string() ||
          !ParseIngestPolicyName(value.string_value(), &out->ingest_policy)) {
        return Status::InvalidArgument(
            "ingest must be \"strict\", \"drop\", or \"reorder\"");
      }
    } else if (key == "reorder_slack") {
      if (!value.is_int() || value.int_value() < 0) {
        return Status::InvalidArgument("reorder_slack must be an int >= 0");
      }
      out->reorder_slack = value.int_value();
    } else if (key == "metrics") {
      if (!value.is_string() ||
          !ParseMetricsGranularity(value.string_value(), &out->metrics)) {
        return Status::InvalidArgument(
            "metrics must be \"off\", \"engine\", or \"operator\"");
      }
    } else if (key == "gather_statistics") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("gather_statistics must be a bool");
      }
      out->gather_statistics = value.bool_value();
    } else if (key == "max_pending_events") {
      if (!value.is_int() || value.int_value() < 1 ||
          static_cast<size_t>(value.int_value()) >
              server_options.max_pending_events) {
        return Status::InvalidArgument(
            "max_pending_events must be in [1, " +
            std::to_string(server_options.max_pending_events) + "]");
      }
      out->max_pending_events = static_cast<size_t>(value.int_value());
    } else if (key == "push_down") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("push_down must be a bool");
      }
      out->plan.push_down_context_windows = value.bool_value();
    } else if (key == "push_predicates") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("push_predicates must be a bool");
      }
      out->plan.push_predicates_into_pattern = value.bool_value();
    } else if (key == "default_within") {
      if (!value.is_int() || value.int_value() < 1) {
        return Status::InvalidArgument("default_within must be an int >= 1");
      }
      out->plan.default_within = value.int_value();
    } else {
      return Status::InvalidArgument("unknown option \"" + key + "\"");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ServerOptions::Validate() const {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  if (host.empty()) return Status::InvalidArgument("host must be non-empty");
  if (executor_workers < 0) {
    return Status::InvalidArgument("executor_workers must be >= 0");
  }
  if (max_tenants < 1) {
    return Status::InvalidArgument("max_tenants must be >= 1");
  }
  if (max_pending_events < 1) {
    return Status::InvalidArgument("max_pending_events must be >= 1");
  }
  if (drain_interval_ms < 1) {
    return Status::InvalidArgument("drain_interval_ms must be >= 1");
  }
  if (max_frame_bytes < 2 || max_frame_bytes > kMaxWirePayload) {
    return Status::InvalidArgument("max_frame_bytes must be in [2, " +
                                   std::to_string(kMaxWirePayload) + "]");
  }
  return Status::Ok();
}

CaesarServer::CaesarServer(ServerOptions options)
    : options_(std::move(options)) {}

CaesarServer::~CaesarServer() { Stop(); }

Status CaesarServer::Start() {
  CAESAR_RETURN_IF_ERROR(options_.Validate());

  if (options_.executor_workers > 1) {
    pool_ = std::make_shared<ShardedExecutor>(options_.executor_workers,
                                              options_.scheduler);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable IPv4 host \"" +
                                   options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Internal(std::string("bind ") + options_.host +
                                     ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (!options_.deterministic) {
    drain_thread_ = std::thread([this] { DrainLoop(); });
  }
  return Status::Ok();
}

void CaesarServer::RequestStop() {
  stop_.store(true);
  stop_cv_.notify_all();
  drain_cv_.notify_all();
}

void CaesarServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    stop_cv_.wait(lock, [this] { return stop_.load(); });
  }
  Stop();
}

void CaesarServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  RequestStop();

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }

  if (drain_thread_.joinable()) drain_thread_.join();

  // Sessions (and their engines) go before the pool they borrow.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.clear();
  }
  pool_.reset();
}

size_t CaesarServer::num_tenants() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

void CaesarServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal; either way we are done
    }
    if (stop_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, slot, fd] {
      ServeConnection(fd);
      // Deregister before close: once the number is back in the kernel's
      // pool, Stop must not shut it down.
      MarkConnectionDone(slot);
      ::close(fd);
    });
  }
}

void CaesarServer::MarkConnectionDone(size_t slot) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  conn_fds_[slot] = -1;
}

void CaesarServer::DrainLoop() {
  const auto interval = std::chrono::milliseconds(options_.drain_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(drain_mutex_);
      drain_cv_.wait_for(lock, interval, [this] { return stop_.load(); });
    }
    if (stop_.load()) return;
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    SessionSerialGuard role(TenantSession::serial_role);
    for (auto& [name, session] : sessions_) {
      Status status = session->Drain(/*flush=*/false);
      if (!status.ok()) {
        std::fprintf(stderr, "caesard: drain tenant %s: %s\n", name.c_str(),
                     status.ToString().c_str());
      }
    }
  }
}

void CaesarServer::ServeConnection(int fd) {
  MessageReader reader(fd, options_.max_frame_bytes);
  std::string payload;
  for (;;) {
    bool binary = false;
    bool eof = false;
    Status status = reader.Next(&payload, &binary, &eof);
    if (!status.ok()) {
      // Torn/hostile framing: answer the coded error (best effort, both
      // framings readable by any client) and drop the connection — the
      // byte stream is no longer trustworthy.
      const std::string error =
          ErrorResponse("I423", status.message()).Dump();
      (void)WriteJsonLine(fd, error);
      break;
    }
    if (eof) break;
    const std::string response = DispatchPayload(payload).Dump();
    status = binary ? WriteBinaryFrame(fd, response)
                    : WriteJsonLine(fd, response);
    if (!status.ok() || stop_.load()) break;
  }
}

JsonValue CaesarServer::DispatchPayload(std::string_view payload) {
  Result<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok()) {
    return ErrorResponse("I423", parsed.status().message());
  }
  return Handle(parsed.value());
}

JsonValue CaesarServer::Handle(const JsonValue& request) {
  if (!request.is_object()) {
    return ErrorResponse("I423", "request must be a JSON object");
  }
  const JsonValue* cmd_field = request.Find("cmd");
  if (cmd_field == nullptr || !cmd_field->is_string()) {
    return ErrorResponse("I423", "request needs a string \"cmd\" field");
  }
  ServerCmd cmd;
  if (!ParseServerCmd(cmd_field->string_value(), &cmd)) {
    return ErrorResponse("I423", "unknown cmd \"" +
                                     cmd_field->string_value() + "\"");
  }

  std::lock_guard<std::mutex> lock(sessions_mutex_);
  SessionSerialGuard role(TenantSession::serial_role);
  switch (cmd) {
    case ServerCmd::kPing:
      return HandlePing();
    case ServerCmd::kRegister:
      return HandleRegister(request);
    case ServerCmd::kIngest:
      return HandleIngest(request);
    case ServerCmd::kFlush:
      return HandleFlush(request);
    case ServerCmd::kPoll:
      return HandlePoll(request);
    case ServerCmd::kStats:
      return HandleStats(request);
    case ServerCmd::kTeardown:
      return HandleTeardown(request);
    case ServerCmd::kList:
      return HandleList();
    case ServerCmd::kShutdown: {
      RequestStop();
      JsonValue response = OkResponse();
      response.Set("stopping", JsonValue::Bool(true));
      return response;
    }
  }
  return ErrorResponse("I423", "unroutable cmd");
}

TenantSession* CaesarServer::FindTenant(const JsonValue& request,
                                        JsonValue* error) {
  const JsonValue* tenant = request.Find("tenant");
  if (tenant == nullptr || !tenant->is_string()) {
    *error = ErrorResponse("I423", "request needs a string \"tenant\" field");
    return nullptr;
  }
  auto it = sessions_.find(tenant->string_value());
  if (it == sessions_.end()) {
    *error = ErrorResponse(
        "I421", "tenant \"" + tenant->string_value() + "\" is not registered");
    return nullptr;
  }
  return it->second.get();
}

JsonValue CaesarServer::HandleRegister(const JsonValue& request) {
  const JsonValue* tenant = request.Find("tenant");
  if (tenant == nullptr || !tenant->is_string() ||
      !ValidTenantName(tenant->string_value())) {
    return ErrorResponse("I423",
                         "register needs a printable \"tenant\" name (1-" +
                             std::to_string(kMaxTenantNameBytes) + " bytes)");
  }
  const std::string& name = tenant->string_value();
  if (sessions_.count(name) != 0) {
    return ErrorResponse("I422",
                         "tenant \"" + name + "\" is already registered");
  }
  if (sessions_.size() >= options_.max_tenants) {
    return ErrorResponse("I420", "tenant limit reached (" +
                                     std::to_string(options_.max_tenants) +
                                     ")");
  }
  const JsonValue* model = request.Find("model");
  if (model == nullptr || !model->is_string()) {
    return ErrorResponse("I423", "register needs a string \"model\" field");
  }

  SessionConfig config;
  config.shared_executor = pool_;
  Status status =
      ParseSessionConfig(request.Find("options"), options_, &config);
  if (!status.ok()) return ErrorResponse("I423", status.message());

  Result<std::unique_ptr<TenantSession>> session =
      TenantSession::Create(name, model->string_value(), config);
  if (!session.ok()) {
    // Admission gate: strict parse or strict lint said no.
    return ErrorResponse("I424", session.status().message());
  }

  JsonValue response = OkResponse();
  response.Set("tenant", JsonValue::String(name));
  response.Set("workers",
               JsonValue::Int(pool_ != nullptr ? pool_->num_workers() : 1));
  response.Set("pattern_engine", JsonValue::String(PatternEngineName(
                                     config.pattern_engine)));
  sessions_.emplace(name, std::move(session).value());
  return response;
}

JsonValue CaesarServer::HandleIngest(const JsonValue& request) {
  JsonValue error;
  TenantSession* session = FindTenant(request, &error);
  if (session == nullptr) return error;

  const JsonValue* rows = request.Find("events");
  if (rows == nullptr || !rows->is_array()) {
    return ErrorResponse("I423", "ingest needs an \"events\" array");
  }
  EventBatch events;
  events.reserve(rows->items().size());
  for (size_t i = 0; i < rows->items().size(); ++i) {
    EventPtr event;
    Status status =
        DecodeEventRow(rows->items()[i], session->registry(), &event);
    if (!status.ok()) {
      return ErrorResponse("I423", "events[" + std::to_string(i) +
                                       "]: " + status.message());
    }
    events.push_back(std::move(event));
  }

  const size_t accepted = events.size();
  Status status = session->Ingest(std::move(events));
  if (!status.ok()) {
    // Backpressure: whole batch refused, nothing admitted, client may
    // retry after a flush/poll has drained the buffer.
    JsonValue response =
        ErrorResponse("I420", status.message());
    response.Set("pending",
                 JsonValue::Int(static_cast<int64_t>(
                     session->pending_events())));
    response.Set("limit", JsonValue::Int(static_cast<int64_t>(
                              session->max_pending_events())));
    return response;
  }

  JsonValue response = OkResponse();
  response.Set("accepted", JsonValue::Int(static_cast<int64_t>(accepted)));
  if (options_.deterministic) {
    // Deterministic mode: run complete ticks now, ship their derivations
    // on this very response.
    status = session->Drain(/*flush=*/false);
    if (!status.ok()) return ErrorResponse("I423", status.message());
    response.Set("derived",
                 EncodeEventBatch(session->TakeOutputs(),
                                  session->registry()));
  }
  response.Set("pending", JsonValue::Int(static_cast<int64_t>(
                              session->pending_events())));
  return response;
}

JsonValue CaesarServer::HandleFlush(const JsonValue& request) {
  JsonValue error;
  TenantSession* session = FindTenant(request, &error);
  if (session == nullptr) return error;

  Status status = session->Drain(/*flush=*/true);
  if (!status.ok()) return ErrorResponse("I423", status.message());
  JsonValue response = OkResponse();
  response.Set("derived", EncodeEventBatch(session->TakeOutputs(),
                                           session->registry()));
  return response;
}

JsonValue CaesarServer::HandlePoll(const JsonValue& request) {
  JsonValue error;
  TenantSession* session = FindTenant(request, &error);
  if (session == nullptr) return error;

  JsonValue response = OkResponse();
  response.Set("derived", EncodeEventBatch(session->TakeOutputs(),
                                           session->registry()));
  response.Set("pending", JsonValue::Int(static_cast<int64_t>(
                              session->pending_events())));
  return response;
}

JsonValue CaesarServer::HandleStats(const JsonValue& request) {
  JsonValue error;
  TenantSession* session = FindTenant(request, &error);
  if (session == nullptr) return error;

  bool prometheus = false;
  if (const JsonValue* format = request.Find("format")) {
    if (!format->is_string() || (format->string_value() != "json" &&
                                 format->string_value() != "prometheus")) {
      return ErrorResponse("I423",
                           "format must be \"json\" or \"prometheus\"");
    }
    prometheus = format->string_value() == "prometheus";
  }
  bool deterministic = false;
  if (const JsonValue* det = request.Find("deterministic")) {
    if (!det->is_bool()) {
      return ErrorResponse("I423", "deterministic must be a bool");
    }
    deterministic = det->bool_value();
  }

  JsonValue response = OkResponse();
  response.Set("format",
               JsonValue::String(prometheus ? "prometheus" : "json"));
  response.Set("stats",
               JsonValue::String(session->ExportStats(prometheus,
                                                      deterministic)));
  return response;
}

JsonValue CaesarServer::HandleTeardown(const JsonValue& request) {
  JsonValue error;
  TenantSession* session = FindTenant(request, &error);
  if (session == nullptr) return error;

  // The session leaves the map whatever the final drain says: teardown
  // must always free the name and the engine.
  std::unique_ptr<TenantSession> owned = std::move(sessions_[session->name()]);
  sessions_.erase(owned->name());

  Status status = owned->Drain(/*flush=*/true);
  if (!status.ok()) {
    JsonValue response = ErrorResponse("I423", status.message());
    response.Set("removed", JsonValue::Bool(true));
    return response;
  }
  JsonValue response = OkResponse();
  response.Set("derived",
               EncodeEventBatch(owned->TakeOutputs(), owned->registry()));
  return response;
}

JsonValue CaesarServer::HandleList() {
  JsonValue tenants = JsonValue::Array();
  for (const auto& [name, session] : sessions_) {
    JsonValue row = JsonValue::Object();
    row.Set("tenant", JsonValue::String(name));
    row.Set("pending", JsonValue::Int(static_cast<int64_t>(
                           session->pending_events())));
    row.Set("accepted", JsonValue::Int(session->total_accepted()));
    tenants.Append(std::move(row));
  }
  JsonValue response = OkResponse();
  response.Set("tenants", std::move(tenants));
  return response;
}

JsonValue CaesarServer::HandlePing() {
  JsonValue response = OkResponse();
  response.Set("protocol", JsonValue::Int(kServerProtocolVersion));
  response.Set("deterministic", JsonValue::Bool(options_.deterministic));
  response.Set("workers",
               JsonValue::Int(pool_ != nullptr ? pool_->num_workers() : 1));
  response.Set("tenants",
               JsonValue::Int(static_cast<int64_t>(sessions_.size())));
  return response;
}

}  // namespace caesar
