#include "server/protocol.h"

#include <cmath>
#include <utility>

namespace caesar {
namespace {

// Wire name for events whose type id the registry cannot resolve
// (quarantined garbage re-exported from a derived-event poll).
constexpr const char* kUnknownTypeName = "__unknown__";

}  // namespace

const char* ServerCmdName(ServerCmd cmd) {
  switch (cmd) {
    case ServerCmd::kPing:
      return "ping";
    case ServerCmd::kRegister:
      return "register";
    case ServerCmd::kIngest:
      return "ingest";
    case ServerCmd::kFlush:
      return "flush";
    case ServerCmd::kPoll:
      return "poll";
    case ServerCmd::kStats:
      return "stats";
    case ServerCmd::kTeardown:
      return "teardown";
    case ServerCmd::kList:
      return "list";
    case ServerCmd::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

bool ParseServerCmd(std::string_view name, ServerCmd* out) {
  static constexpr ServerCmd kAll[] = {
      ServerCmd::kPing,  ServerCmd::kRegister, ServerCmd::kIngest,
      ServerCmd::kFlush, ServerCmd::kPoll,     ServerCmd::kStats,
      ServerCmd::kTeardown, ServerCmd::kList,  ServerCmd::kShutdown,
  };
  for (ServerCmd cmd : kAll) {
    if (name == ServerCmdName(cmd)) {
      *out = cmd;
      return true;
    }
  }
  return false;
}

JsonValue EncodeEventRow(const Event& event, const TypeRegistry& registry) {
  JsonValue row = JsonValue::Array();
  const bool known =
      event.type_id() >= 0 && event.type_id() < registry.num_types();
  row.Append(JsonValue::String(known ? registry.type(event.type_id()).name
                                     : kUnknownTypeName));
  row.Append(JsonValue::Int(event.start_time()));
  if (event.end_time() != event.start_time()) {
    row.Append(JsonValue::Int(event.end_time()));
  }
  JsonValue values = JsonValue::Array();
  for (const Value& v : event.values()) {
    switch (v.type()) {
      case ValueType::kNull:
        values.Append(JsonValue::Null());
        break;
      case ValueType::kInt:
        values.Append(JsonValue::Int(v.AsInt()));
        break;
      case ValueType::kDouble:
        values.Append(JsonValue::Double(v.AsDouble()));
        break;
      case ValueType::kString:
        values.Append(JsonValue::String(v.AsString()));
        break;
    }
  }
  row.Append(std::move(values));
  return row;
}

JsonValue EncodeEventBatch(const EventBatch& events,
                           const TypeRegistry& registry) {
  JsonValue rows = JsonValue::Array();
  for (const EventPtr& event : events) {
    rows.Append(EncodeEventRow(*event, registry));
  }
  return rows;
}

namespace {

// Strict integral timestamp: ints pass through; doubles only if exactly
// integral (JSON clients often cannot emit int64 distinctly).
bool ReadTimestamp(const JsonValue& v, Timestamp* out) {
  if (v.is_int()) {
    *out = v.int_value();
    return true;
  }
  if (v.is_double()) {
    const double d = v.double_value();
    if (!std::isfinite(d) || d != std::floor(d)) return false;
    *out = static_cast<Timestamp>(d);
    return true;
  }
  return false;
}

}  // namespace

Status DecodeEventRow(const JsonValue& row, const TypeRegistry& registry,
                      EventPtr* out) {
  if (!row.is_array() || row.items().size() < 3 || row.items().size() > 4) {
    return Status::InvalidArgument(
        "event row must be [type, time, [values...]] or "
        "[type, start, end, [values...]]");
  }
  const auto& items = row.items();
  if (!items[0].is_string()) {
    return Status::InvalidArgument("event row type name must be a string");
  }
  Timestamp start = 0;
  Timestamp end = 0;
  if (!ReadTimestamp(items[1], &start)) {
    return Status::InvalidArgument("event row time must be an integer");
  }
  const bool interval = items.size() == 4;
  if (interval) {
    if (!ReadTimestamp(items[2], &end)) {
      return Status::InvalidArgument("event row end time must be an integer");
    }
  } else {
    end = start;
  }
  const JsonValue& wire_values = items[interval ? 3 : 2];
  if (!wire_values.is_array()) {
    return Status::InvalidArgument("event row values must be an array");
  }
  std::vector<Value> values;
  values.reserve(wire_values.items().size());
  for (const JsonValue& v : wire_values.items()) {
    switch (v.kind()) {
      case JsonValue::Kind::kNull:
        values.emplace_back();
        break;
      case JsonValue::Kind::kInt:
        values.emplace_back(v.int_value());
        break;
      case JsonValue::Kind::kDouble:
        values.emplace_back(v.double_value());
        break;
      case JsonValue::Kind::kString:
        values.emplace_back(v.string_value());
        break;
      default:
        return Status::InvalidArgument(
            "event values must be null, number, or string");
    }
  }
  // Unknown names map to an out-of-range id on purpose: the engine's own
  // ingest policy then quarantines the event (kUnknownType), identical to
  // a library caller handing in a corrupt type id.
  TypeId type_id = registry.Lookup(items[0].string_value());
  if (type_id == kInvalidTypeId) type_id = registry.num_types();
  *out = interval
             ? MakeComplexEvent(type_id, start, end, std::move(values))
             : MakeEvent(type_id, start, std::move(values));
  return Status::Ok();
}

JsonValue OkResponse() {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  return response;
}

JsonValue ErrorResponse(const char* code, const std::string& message) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("code", JsonValue::String(code));
  response.Set("error", JsonValue::String(message));
  return response;
}

}  // namespace caesar
