// Wire layer of the caesard socket protocol: a minimal JSON document
// model (parser + deterministic serializer) and the two message framings
// the daemon speaks on one port, distinguished per message by the first
// byte:
//
//   binary frames   0xC5 magic + u32 little-endian payload length + payload
//   newline-JSON    one JSON document per '\n'-terminated line (debug mode;
//                   `nc 127.0.0.1 PORT` works)
//
// The payload of both framings is the same JSON request/response document
// (server/protocol.h), so the framings are freely mixable on a connection
// and a reply always uses the framing of its request.
//
// Everything here is deliberately self-contained (no external JSON
// dependency): the parser is a bounded recursive-descent reader hardened
// for the protocol fuzz leg (depth cap, frame-size cap upstream), and the
// serializer is deterministic — equal documents render byte-identically,
// which the socket-vs-batch differential tests rely on.

#ifndef CAESAR_SERVER_WIRE_H_
#define CAESAR_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace caesar {

// ---------------------------------------------------------------------------
// JSON documents
// ---------------------------------------------------------------------------

// A parsed JSON value. Objects preserve insertion order (deterministic
// Dump) and keep the first entry on duplicate keys.
class JsonValue {
 public:
  enum class Kind : int8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) {
    JsonValue j;
    j.kind_ = Kind::kBool;
    j.bool_ = v;
    return j;
  }
  static JsonValue Int(int64_t v) {
    JsonValue j;
    j.kind_ = Kind::kInt;
    j.int_ = v;
    return j;
  }
  static JsonValue Double(double v) {
    JsonValue j;
    j.kind_ = Kind::kDouble;
    j.double_ = v;
    return j;
  }
  static JsonValue String(std::string v) {
    JsonValue j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue Array() {
    JsonValue j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static JsonValue Object() {
    JsonValue j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors require the matching kind (callers check first; the
  // protocol layer rejects shape mismatches with coded errors).
  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  // Numeric value whatever the representation; requires is_number().
  double number_value() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& entries() const {
    return entries_;
  }

  // Object lookup; null if absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Builders (no-ops on the wrong kind are programming errors; they abort
  // in debug via the kind switch in Dump).
  void Append(JsonValue value) { items_.push_back(std::move(value)); }
  void Set(std::string key, JsonValue value) {
    entries_.emplace_back(std::move(key), std::move(value));
  }

  // Deterministic serialization: no whitespace, object entries in
  // insertion order, doubles via round-trip "%.17g" (trailing-zero
  // trimmed), strings escaped exactly like the parser expects.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> entries_;
};

// Parses exactly one JSON document spanning all of `text` (trailing
// whitespace allowed, trailing garbage rejected). Depth-capped; errors
// carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonQuote(std::string_view s);

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

// First byte of a binary frame. 0xC5 is not valid leading UTF-8 for any
// JSON document, so the two framings are unambiguous per message.
inline constexpr uint8_t kFrameMagic = 0xC5;

// Hard cap on one message's payload, both framings (admission control at
// the transport: a hostile length prefix must not allocate gigabytes).
inline constexpr uint32_t kMaxWirePayload = 16u << 20;  // 16 MiB

// write(2) the whole buffer, retrying on EINTR/short writes. MSG_NOSIGNAL
// semantics: a closed peer returns a Status, never raises SIGPIPE.
Status WriteAllToSocket(int fd, std::string_view data);

// One message, binary framing: magic + u32 LE length + payload.
Status WriteBinaryFrame(int fd, std::string_view payload);

// One message, newline-JSON framing. `payload` must not contain '\n'
// (JsonValue::Dump never emits one).
Status WriteJsonLine(int fd, std::string_view payload);

// Buffered reader for one connection; speaks both framings.
class MessageReader {
 public:
  // Caps single-message size at `max_payload` bytes.
  explicit MessageReader(int fd, uint32_t max_payload = kMaxWirePayload)
      : fd_(fd), max_payload_(max_payload) {}

  // Reads the next message. On success either *eof is true (clean EOF at
  // a message boundary) or *payload holds the message and *binary records
  // its framing. A torn frame, oversized length, or mid-frame EOF returns
  // a Status — the connection is then unusable and should be closed.
  Status Next(std::string* payload, bool* binary, bool* eof);

 private:
  // Ensures the buffer holds >= need unconsumed bytes; *eof reports a
  // clean EOF with an empty buffer.
  Status Fill(size_t need, bool* eof);

  int fd_;
  uint32_t max_payload_;
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace caesar

#endif  // CAESAR_SERVER_WIRE_H_
