// One tenant hosted by caesard: an Engine (over the server's shared worker
// pool), its model's TypeRegistry, and the two buffers that adapt socket
// push to the engine's batch Run —
//
//   pending_  events accepted off the wire but not yet run. Drain feeds
//             the engine whole ticks only: the trailing run of equal-time
//             events (the still-open newest tick) is held back until more
//             time arrives or the tenant flushes. Tick-aligned splits are
//             exactly the boundary the durability tests already prove
//             byte-identical to one batch Run, which is what makes the
//             server's deterministic mode hold.
//   outputs_  derived events not yet shipped to the client (poll/flush).
//
// Sessions are not thread-safe; the server serializes access (one global
// session lock), which also honors the shared-executor contract that two
// engines never ExecuteTick concurrently.

#ifndef CAESAR_SERVER_SESSION_H_
#define CAESAR_SERVER_SESSION_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"
#include "event/schema.h"
#include "plan/translator.h"
#include "runtime/engine.h"

namespace caesar {

// The serialization contract above, made checkable: a phantom capability
// (the clang thread-safety "role" idiom — no runtime state, no blocking)
// standing for "the right to touch a session's buffers". The server
// acquires it together with its global session lock; TenantSession's
// buffer-touching methods require it, so a future code path that reaches
// a session without the lock fails the -Wthread-safety CI build instead
// of racing at runtime.
class CAESAR_CAPABILITY("role") SessionSerialRole {
 public:
  void Acquire() CAESAR_ACQUIRE() {}
  void Release() CAESAR_RELEASE() {}
};

// RAII role acquisition; compiles to nothing, exists for the analysis.
class CAESAR_SCOPED_CAPABILITY SessionSerialGuard {
 public:
  explicit SessionSerialGuard(SessionSerialRole& role) CAESAR_ACQUIRE(role)
      : role_(role) {
    role_.Acquire();
  }
  ~SessionSerialGuard() CAESAR_RELEASE() { role_.Release(); }

  SessionSerialGuard(const SessionSerialGuard&) = delete;
  SessionSerialGuard& operator=(const SessionSerialGuard&) = delete;

 private:
  SessionSerialRole& role_;
};

// Per-tenant knobs, decoded from the register request's "options" object
// (server/protocol.h). Engine-level fields mirror EngineOptions.
struct SessionConfig {
  // Worker pool the tenant's engine dispatches to; null = serial engine.
  std::shared_ptr<ShardedExecutor> shared_executor;

  PatternEngine pattern_engine = PatternEngine::kInterpreted;
  IngestPolicy ingest_policy = IngestPolicy::kStrict;
  Timestamp reorder_slack = 0;
  MetricsGranularity metrics = MetricsGranularity::kEngine;
  bool gather_statistics = true;
  PlanOptions plan;

  // Backpressure bound: an ingest that would push pending_ beyond this
  // many events is rejected whole with I420 (no partial admission, no
  // silent drops).
  size_t max_pending_events = 1u << 16;
};

// A registered tenant. Construction is the admission gate: the model must
// survive the strict parse AND the strict analyzer (caesar-lint's gate,
// AnalysisMode::kStrict) before an engine exists.
class TenantSession {
 public:
  static Result<std::unique_ptr<TenantSession>> Create(
      const std::string& name, std::string_view model_text,
      SessionConfig config);

  const std::string& name() const { return name_; }
  const TypeRegistry& registry() const { return *registry_; }
  const SessionConfig& config() const { return config_; }

  // Every tenant shares one role: the server's single session lock
  // serializes ALL sessions at once, so one capability is the honest
  // model (a per-session role would claim finer locking than exists).
  static SessionSerialRole serial_role;

  size_t pending_events() const CAESAR_REQUIRES(serial_role) {
    return pending_.size();
  }
  size_t max_pending_events() const { return config_.max_pending_events; }
  int64_t total_accepted() const CAESAR_REQUIRES(serial_role) {
    return total_accepted_;
  }

  // Appends to pending_, whole batch or nothing: OutOfRange (the server
  // maps it to I420) when the batch would overflow the bound.
  Status Ingest(EventBatch events) CAESAR_REQUIRES(serial_role);

  // Runs the engine over buffered complete ticks (see file comment). With
  // `flush` the open tick is forced through too, leaving pending_ empty.
  // A failed Run (e.g. strict-policy rejection of disordered input)
  // discards the rejected events — exactly what a library caller does
  // with a batch Run rejects — and returns the engine's Status.
  Status Drain(bool flush) CAESAR_REQUIRES(serial_role);

  // Hands over and clears the derived events accumulated by Drain.
  EventBatch TakeOutputs() CAESAR_REQUIRES(serial_role);

  // Statistics export for this tenant (the report carries the tenant
  // label). `prometheus` picks the text exposition format over JSON;
  // `deterministic` drops wall-clock and thread-layout fields so exports
  // are byte-comparable to an in-process run.
  std::string ExportStats(bool prometheus, bool deterministic) const;

  const Engine& engine() const { return *engine_; }

 private:
  TenantSession(std::string name, std::unique_ptr<TypeRegistry> registry,
                std::unique_ptr<Engine> engine, SessionConfig config)
      : name_(std::move(name)),
        registry_(std::move(registry)),
        engine_(std::move(engine)),
        config_(std::move(config)) {}

  std::string name_;
  // The model and plan reference the registry by pointer; it must outlive
  // the engine, so the session owns it on the heap.
  std::unique_ptr<TypeRegistry> registry_;
  std::unique_ptr<Engine> engine_;
  SessionConfig config_;

  EventBatch pending_ CAESAR_GUARDED_BY(serial_role);
  EventBatch outputs_ CAESAR_GUARDED_BY(serial_role);
  int64_t total_accepted_ CAESAR_GUARDED_BY(serial_role) = 0;
};

}  // namespace caesar

#endif  // CAESAR_SERVER_SESSION_H_
